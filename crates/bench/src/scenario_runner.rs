//! Executes declarative scenarios: builds the environment (oracle chain
//! across drift events, hint-shaped), fans seeded runs out with crossbeam,
//! and aggregates a deterministic [`ScenarioOutcome`] per scenario.
//!
//! Everything a golden file pins must be reproducible bit for bit, so the
//! outcome deliberately excludes wall-clock quantities (the policy
//! overhead metering of Figs. 7/13 stays in the figure harness). Seed
//! fan-out writes into pre-sized slots and aggregates in seed order, so
//! thread scheduling cannot reorder the arithmetic.

use crate::report::Json;
use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle, Oracle};
use limeqo_core::online::OnlineExplorer;
use limeqo_core::scenario::{segment_monotone, PolicySpec};
use limeqo_linalg::Mat;
use limeqo_sim::drift::{build_oracle_uncalibrated, drift_workload};
use limeqo_sim::scenario::{DriftKind, ScenarioSpec, ScenarioWorkload};

/// Deterministic summary of one scenario (seed means where applicable).
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Registry name.
    pub name: String,
    /// Policy display name.
    pub policy: &'static str,
    /// One-line scenario description.
    pub summary: String,
    /// Final matrix rows (after any `AddQueries` events).
    pub n: usize,
    /// Hint columns after the hint shape is applied.
    pub k: usize,
    /// Default total of the *initial* regime (budget basis).
    pub initial_default_total: f64,
    /// Default total of the final regime (post-drift oracle).
    pub default_total: f64,
    /// Optimal total of the final regime.
    pub optimal_total: f64,
    /// Workload latency at budget exhaustion, mean across seeds (offline
    /// scenarios; 0 for online ones, which report [`OnlineOutcome`]).
    pub final_latency: f64,
    /// Same budget under the Random baseline (offline scenarios only).
    pub random_final_latency: Option<f64>,
    /// Cells executed, mean across seeds.
    pub cells_executed: f64,
    /// Censored cells left in the matrix, mean across seeds.
    pub censored_cells: f64,
    /// Latency monotone non-increasing within every inter-event segment,
    /// for every seed.
    pub monotone_ok: bool,
    /// Online-exploration statistics, present iff the policy is online.
    pub online: Option<OnlineOutcome>,
    /// Per-seed final latencies of the named policy, in seed order
    /// (offline scenarios; empty for online ones). Diagnostic only —
    /// deliberately kept out of [`ScenarioOutcome::metrics`] so goldens
    /// pin the seed mean; the fuzzer's luck-robust median invariant
    /// reads it.
    pub seed_final_latencies: Vec<f64>,
    /// Per-seed Random-reference finals, parallel to
    /// `seed_final_latencies` (offline scenarios with a non-Random
    /// policy only).
    pub random_seed_final_latencies: Option<Vec<f64>>,
    /// Peak workload-matrix resident bytes across the named policy's
    /// seeded runs ([`limeqo_core::matrix::WorkloadMatrix::mem_bytes`]
    /// accounting, allocator-independent). Not a golden metric; the
    /// scale-tier memory-budget assertions read it.
    pub mem_bytes: u64,
}

/// Aggregated online-exploration outcome (seed means; bounds hold for
/// every seed).
#[derive(Debug, Clone)]
pub struct OnlineOutcome {
    /// Arrivals served per seed.
    pub arrivals: f64,
    /// Arrivals that gambled on an unverified hint.
    pub explored: f64,
    /// Gambles that found a faster verified plan.
    pub wins: f64,
    /// Gambles cancelled at the ρ-timeout.
    pub cancelled: f64,
    /// Total latency experienced.
    pub total_latency: f64,
    /// Total latency had every arrival served the default plan.
    pub default_latency: f64,
    /// Total latency had every arrival served its incumbent.
    pub incumbent_latency: f64,
    /// Worst per-arrival `experienced / incumbent` ratio observed.
    pub max_regression_ratio: f64,
    /// Every arrival obeyed `experienced ≤ (ρ + 1) × incumbent`.
    pub rho_bound_ok: bool,
    /// Workload latency if every query now ran its best verified hint.
    pub final_latency: f64,
    /// Open-loop queue-wait mean per arrival (Lindley recursion over the
    /// experienced service times), present iff the spec sets an arrival
    /// `rate`. Seed mean.
    pub queue_wait_mean: Option<f64>,
    /// Worst queue wait across arrivals and seeds, present iff `rate` set.
    pub queue_wait_max: Option<f64>,
}

impl ScenarioOutcome {
    /// Flatten into `(key, value)` metric pairs — the golden-file format.
    /// Booleans encode as 0/1; every value is deterministic.
    pub fn metrics(&self) -> Vec<(String, f64)> {
        let key = |k: &str| format!("{}.{k}", self.name);
        let mut m = vec![
            (key("n"), self.n as f64),
            (key("k"), self.k as f64),
            (key("initial_default_total"), self.initial_default_total),
            (key("default_total"), self.default_total),
            (key("optimal_total"), self.optimal_total),
            (key("cells_executed"), self.cells_executed),
            (key("censored_cells"), self.censored_cells),
            (key("monotone_ok"), self.monotone_ok as u8 as f64),
        ];
        if self.online.is_none() {
            m.push((key("final_latency"), self.final_latency));
        }
        if let Some(r) = self.random_final_latency {
            m.push((key("random_final_latency"), r));
        }
        if let Some(o) = &self.online {
            m.extend([
                (key("online_arrivals"), o.arrivals),
                (key("online_explored"), o.explored),
                (key("online_wins"), o.wins),
                (key("online_cancelled"), o.cancelled),
                (key("online_total_latency"), o.total_latency),
                (key("online_default_latency"), o.default_latency),
                (key("online_incumbent_latency"), o.incumbent_latency),
                (key("online_max_regression_ratio"), o.max_regression_ratio),
                (key("online_rho_bound_ok"), o.rho_bound_ok as u8 as f64),
                (key("final_latency"), o.final_latency),
            ]);
            // Open-loop metrics only exist when the spec sets a rate, so
            // closed-loop goldens (every pre-corpus scenario) never move.
            if let Some(w) = o.queue_wait_mean {
                m.push((key("online_queue_wait_mean"), w));
            }
            if let Some(w) = o.queue_wait_max {
                m.push((key("online_queue_wait_max"), w));
            }
        }
        m
    }

    /// The scenario as a JSON object for the machine-readable report.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("policy".to_string(), Json::Str(self.policy.to_string())),
            ("summary".to_string(), Json::Str(self.summary.clone())),
        ];
        for (k, v) in self.metrics() {
            let short = k.split_once('.').map(|(_, rest)| rest.to_string()).unwrap_or(k);
            fields.push((short, Json::Num(v)));
        }
        Json::Obj(fields)
    }
}

/// The built environment: the oracle for the initial regime plus one
/// oracle per scheduled `DataShift`, in event order.
struct Env {
    oracles: Vec<MatOracle>,
    initial_rows: usize,
    budget: f64,
}

fn select_columns(m: &Mat, idx: &[usize]) -> Mat {
    Mat::from_fn(m.rows(), idx.len(), |r, c| m[(r, idx[c])])
}

fn build_env(spec: &ScenarioSpec) -> Env {
    let (oracles, n) = match &spec.workload {
        ScenarioWorkload::Sim(wspec) => {
            let mut w = wspec.build();
            let idx = spec.hint_shape.indices(w.hints.len());
            w.hints = w.hints.subset(&idx);
            let m0 = w.build_oracle();
            let mut oracles =
                vec![MatOracle::new(m0.true_latency.clone(), Some(m0.est_cost.clone()))];
            // Shifts compound: each DataShift ages the *already drifted*
            // database further, so two 365-day shifts really are 730 days.
            let mut current = w.clone();
            for (i, ev) in spec.drift.iter().enumerate() {
                if let DriftKind::DataShift { days } = ev.kind {
                    current = drift_workload(&current, days, wspec.seed ^ (i as u64 + 1));
                    let dm = build_oracle_uncalibrated(&current);
                    oracles.push(MatOracle::new(dm.true_latency, Some(dm.est_cost)));
                }
            }
            (oracles, w.n())
        }
        ScenarioWorkload::Synthetic(sspec) => {
            let full = sspec.build_latency();
            let idx = spec.hint_shape.indices(sspec.k);
            (vec![MatOracle::new(select_columns(&full, &idx), None)], sspec.n)
        }
    };
    let initial_rows = n - spec.arriving_queries();
    let budget = spec.budget_multiple * oracles[0].default_total();
    Env { oracles, initial_rows, budget }
}

/// Per-seed offline result.
struct OfflineSeed {
    final_latency: f64,
    cells: usize,
    censored: usize,
    monotone: bool,
    mem_bytes: usize,
}

fn run_offline_seed(spec: &ScenarioSpec, env: &Env, policy: &PolicySpec, seed: u64) -> OfflineSeed {
    // Each policy carries its own drift-retention knobs: the Random
    // reference keeps the legacy discard-on-shift semantics even when the
    // named policy retains priors, so the comparison isolates the policy.
    let cfg = ExploreConfig {
        batch: spec.batch,
        seed,
        retention: policy.drift(),
        max_steps: spec.max_steps,
        shards: spec.shards,
        retry: Default::default(),
        probe_fail_rate: spec.probe_fail_rate,
        probe_fail_seed: spec.probe_fail_seed,
    };
    let mut ex = Explorer::new(&env.oracles[0], policy.build_policy(seed), cfg, env.initial_rows);
    let mut monotone = true;
    let mut seg_start = 0usize;
    let mut shift_idx = 1usize;
    let check_segment = |points: &[limeqo_core::metrics::CurvePoint], from: usize| {
        let lats: Vec<f64> = points[from..].iter().map(|p| p.latency).collect();
        segment_monotone(&lats)
    };
    for ev in &spec.drift {
        ex.run_until(ev.at_frac * env.budget);
        monotone &= check_segment(&ex.curve().points, seg_start);
        match ev.kind {
            DriftKind::AddQueries { count } => ex.add_queries(count),
            DriftKind::DataShift { .. } => {
                ex.data_shift(&env.oracles[shift_idx]);
                shift_idx += 1;
            }
        }
        // The event recorded a point; the next segment starts there (the
        // event itself may raise latency, later steps must not).
        seg_start = ex.curve().points.len() - 1;
    }
    ex.run_until(env.budget);
    monotone &= check_segment(&ex.curve().points, seg_start);
    OfflineSeed {
        final_latency: ex.workload_latency(),
        cells: ex.cells_executed(),
        censored: ex.wm().censored_count(),
        monotone,
        mem_bytes: ex.wm().mem_bytes(),
    }
}

/// Per-seed online result.
struct OnlineSeed {
    stats: limeqo_core::online::OnlineStats,
    max_ratio: f64,
    rho_ok: bool,
    final_latency: f64,
    /// Gamble executions: completed cells beyond the free defaults plus
    /// every ρ-cancellation (re-gambles on a still-censored cell count
    /// each time) — `stats.wins` misses gambles that completed slower
    /// than the incumbent.
    cells: usize,
    censored: usize,
    /// `(mean, max)` open-loop queue wait, `None` for closed-loop specs.
    queue_wait: Option<(f64, f64)>,
    mem_bytes: usize,
}

fn run_online_seed(spec: &ScenarioSpec, env: &Env, seed: u64) -> OnlineSeed {
    let oracle = &env.oracles[0];
    let mut cfg = spec.policy.online_config(seed).expect("online policy spec");
    cfg.shards = spec.shards;
    let rho = cfg.rho;
    let mut ex = OnlineExplorer::new(oracle, spec.policy.build_completer(seed), cfg);
    let arrivals = spec.arrivals.as_ref().expect("online scenario has arrivals");
    let n = ex.wm().n_rows();
    let trace = arrivals.trace(n, seed);
    let mut max_ratio = 0.0f64;
    let mut rho_ok = true;
    let mut served = Vec::with_capacity(trace.len());
    for &row in &trace {
        let incumbent = ex.wm().row_best(row).expect("default observed").1;
        let experienced = ex.serve(row);
        max_ratio = max_ratio.max(experienced / incumbent);
        rho_ok &= experienced <= (rho + 1.0) * incumbent + 1e-9;
        served.push(experienced);
    }
    // Open-loop queue accounting (rate > 0): a single-server queue where
    // arrival i waits W_i = max(0, W_{i-1} + S_{i-1} - A_i) (Lindley), with
    // exponential interarrival gaps A and the experienced latencies as
    // service times S. Derived from quantities already pinned by goldens,
    // and only emitted for specs that opt into a rate.
    let gaps = arrivals.interarrival_gaps(seed);
    let queue_wait = (!gaps.is_empty()).then(|| {
        let mut wait = 0.0f64;
        let (mut sum, mut max) = (0.0f64, 0.0f64);
        for i in 1..served.len() {
            wait = (wait + served[i - 1] - gaps[i]).max(0.0);
            sum += wait;
            max = max.max(wait);
        }
        (sum / served.len() as f64, max)
    });
    let final_latency = (0..n)
        .map(|i| {
            let (col, _) = ex.wm().row_best(i).expect("default observed");
            oracle.true_latency(i, col)
        })
        .sum();
    let censored = ex.wm().censored_count();
    // The n default cells were observed for free at construction; each
    // cancellation was a distinct execution even when it re-probed an
    // already-censored cell.
    let cells = ex.wm().complete_count() - n + ex.stats().cancelled;
    OnlineSeed {
        mem_bytes: ex.wm().mem_bytes(),
        stats: ex.stats().clone(),
        max_ratio,
        rho_ok,
        final_latency,
        cells,
        censored,
        queue_wait,
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Run one scenario: build the environment once, fan the seeds out in
/// parallel, aggregate deterministically.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioOutcome {
    spec.validate();
    let env = build_env(spec);
    let final_oracle = env.oracles.last().expect("at least one oracle");
    let (n, k) = final_oracle.shape();

    let mut outcome = ScenarioOutcome {
        name: spec.name.to_string(),
        policy: spec.policy.name(),
        summary: spec.summary.clone(),
        n,
        k,
        initial_default_total: env.oracles[0].default_total(),
        default_total: final_oracle.default_total(),
        optimal_total: final_oracle.optimal_total(),
        final_latency: 0.0,
        random_final_latency: None,
        cells_executed: 0.0,
        censored_cells: 0.0,
        monotone_ok: true,
        online: None,
        seed_final_latencies: Vec::new(),
        random_seed_final_latencies: None,
        mem_bytes: 0,
    };

    if spec.policy.is_online() {
        let mut slots: Vec<Option<OnlineSeed>> = (0..spec.seeds.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (slot, &seed) in slots.iter_mut().zip(spec.seeds.iter()) {
                let env = &env;
                scope.spawn(move |_| *slot = Some(run_online_seed(spec, env, seed)));
            }
        })
        .expect("online seed fan-out");
        let runs: Vec<OnlineSeed> = slots.into_iter().map(|s| s.expect("seed ran")).collect();
        outcome.mem_bytes = runs.iter().map(|r| r.mem_bytes).max().unwrap_or(0) as u64;
        outcome.cells_executed = mean(&runs.iter().map(|r| r.cells as f64).collect::<Vec<_>>());
        outcome.censored_cells = mean(&runs.iter().map(|r| r.censored as f64).collect::<Vec<_>>());
        outcome.online = Some(OnlineOutcome {
            arrivals: mean(&runs.iter().map(|r| r.stats.arrivals as f64).collect::<Vec<_>>()),
            explored: mean(&runs.iter().map(|r| r.stats.explored as f64).collect::<Vec<_>>()),
            wins: mean(&runs.iter().map(|r| r.stats.wins as f64).collect::<Vec<_>>()),
            cancelled: mean(&runs.iter().map(|r| r.stats.cancelled as f64).collect::<Vec<_>>()),
            total_latency: mean(&runs.iter().map(|r| r.stats.total_latency).collect::<Vec<_>>()),
            default_latency: mean(
                &runs.iter().map(|r| r.stats.default_latency).collect::<Vec<_>>(),
            ),
            incumbent_latency: mean(
                &runs.iter().map(|r| r.stats.incumbent_latency).collect::<Vec<_>>(),
            ),
            max_regression_ratio: runs.iter().map(|r| r.max_ratio).fold(0.0, f64::max),
            rho_bound_ok: runs.iter().all(|r| r.rho_ok),
            final_latency: mean(&runs.iter().map(|r| r.final_latency).collect::<Vec<_>>()),
            queue_wait_mean: runs[0].queue_wait.map(|_| {
                mean(&runs.iter().filter_map(|r| r.queue_wait.map(|w| w.0)).collect::<Vec<_>>())
            }),
            queue_wait_max: runs[0]
                .queue_wait
                .map(|_| runs.iter().filter_map(|r| r.queue_wait.map(|w| w.1)).fold(0.0, f64::max)),
        });
        return outcome;
    }

    // Offline: the spec's policy plus a Random reference at equal budget.
    let random = PolicySpec::Random;
    let run_all = |policy: &PolicySpec| -> Vec<OfflineSeed> {
        let mut slots: Vec<Option<OfflineSeed>> = (0..spec.seeds.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (slot, &seed) in slots.iter_mut().zip(spec.seeds.iter()) {
                let env = &env;
                scope.spawn(move |_| *slot = Some(run_offline_seed(spec, env, policy, seed)));
            }
        })
        .expect("offline seed fan-out");
        slots.into_iter().map(|s| s.expect("seed ran")).collect()
    };
    let runs = run_all(&spec.policy);
    outcome.seed_final_latencies = runs.iter().map(|r| r.final_latency).collect();
    outcome.mem_bytes = runs.iter().map(|r| r.mem_bytes).max().unwrap_or(0) as u64;
    outcome.final_latency = mean(&outcome.seed_final_latencies);
    outcome.cells_executed = mean(&runs.iter().map(|r| r.cells as f64).collect::<Vec<_>>());
    outcome.censored_cells = mean(&runs.iter().map(|r| r.censored as f64).collect::<Vec<_>>());
    outcome.monotone_ok = runs.iter().all(|r| r.monotone);
    if spec.policy != random {
        // Note: the reference's own monotonicity is NOT folded into
        // monotone_ok — that flag describes the named policy, and Random's
        // no-regression property is covered by core's property tests.
        let reference = run_all(&random);
        let finals: Vec<f64> = reference.iter().map(|r| r.final_latency).collect();
        outcome.random_final_latency = Some(mean(&finals));
        outcome.random_seed_final_latencies = Some(finals);
    }
    outcome
}

// ---------------------------------------------------------------------------
// Engine-API equivalence (`scenario --via-service`).

/// One seed's full deterministic trajectory, captured for bitwise
/// comparison between the legacy harness drivers and the raw engine
/// event API.
struct EngineRun {
    trace: Vec<limeqo_core::TraceEntry>,
    time_spent: f64,
    cells: usize,
    censored: usize,
    final_latency: f64,
}

/// The legacy path: [`Explorer`] drives the run (as [`run_offline_seed`]
/// does), but the exploration trace is kept for comparison.
fn offline_seed_via_explorer(
    spec: &ScenarioSpec,
    env: &Env,
    policy: &PolicySpec,
    seed: u64,
) -> EngineRun {
    let cfg = ExploreConfig {
        batch: spec.batch,
        seed,
        retention: policy.drift(),
        max_steps: spec.max_steps,
        shards: spec.shards,
        retry: Default::default(),
        probe_fail_rate: spec.probe_fail_rate,
        probe_fail_seed: spec.probe_fail_seed,
    };
    let mut ex = Explorer::new(&env.oracles[0], policy.build_policy(seed), cfg, env.initial_rows);
    let mut shift_idx = 1usize;
    for ev in &spec.drift {
        ex.run_until(ev.at_frac * env.budget);
        match ev.kind {
            DriftKind::AddQueries { count } => ex.add_queries(count),
            DriftKind::DataShift { .. } => {
                ex.data_shift(&env.oracles[shift_idx]);
                shift_idx += 1;
            }
        }
    }
    ex.run_until(env.budget);
    EngineRun {
        trace: ex.trace().to_vec(),
        time_spent: ex.time_spent(),
        cells: ex.cells_executed(),
        censored: ex.wm().censored_count(),
        final_latency: ex.workload_latency(),
    }
}

/// The service path: the same scenario driven through the raw
/// [`limeqo_core::Engine`] event API — the exact trajectory a `limeqo-svc`
/// daemon would journal.
fn offline_seed_via_engine(
    spec: &ScenarioSpec,
    env: &Env,
    policy: &PolicySpec,
    seed: u64,
) -> EngineRun {
    use limeqo_core::engine::data_shift_observations;
    use limeqo_core::matrix::WorkloadMatrix;
    use limeqo_core::store::ObservationStore;
    use limeqo_core::{Action, Engine, Event};

    // Mirrors `Explorer::step` exactly — including the fault draw order
    // and the idle-tick-through-backoff rule — so the `--via-service`
    // equivalence check stays bitwise even under injected probe failures.
    struct FaultKnob {
        rate: f64,
        rng: limeqo_linalg::rng::SeededRng,
    }
    fn tick(engine: &mut Engine<'_>, oracle: &MatOracle, fault: &mut FaultKnob) -> bool {
        let actions = engine.step(Event::Tick);
        if actions.is_empty() {
            return engine.retry_pending() > 0;
        }
        for action in actions {
            let Action::Probe { row, col, timeout } = action else { continue };
            if fault.rate > 0.0 && fault.rng.chance(fault.rate) {
                engine.step(Event::ProbeFailed { row, col });
                continue;
            }
            let truth = oracle.true_latency(row, col);
            let censored = truth > timeout;
            let value = if censored { timeout } else { truth };
            engine.step(Event::Observation { row, col, value, censored });
        }
        true
    }
    fn run_until(engine: &mut Engine<'_>, oracle: &MatOracle, fault: &mut FaultKnob, budget: f64) {
        engine.scheduler_mut().start_run();
        while engine.admit_round(budget) {
            if !tick(engine, oracle, fault) {
                break;
            }
        }
    }

    let cfg = ExploreConfig {
        batch: spec.batch,
        seed,
        retention: policy.drift(),
        max_steps: spec.max_steps,
        shards: spec.shards,
        retry: Default::default(),
        probe_fail_rate: spec.probe_fail_rate,
        probe_fail_seed: spec.probe_fail_seed,
    };
    let mut oracle = &env.oracles[0];
    let (_, k) = oracle.shape();
    let defaults: Vec<f64> = (0..env.initial_rows)
        .map(|i| oracle.true_latency(i, WorkloadMatrix::DEFAULT_HINT))
        .collect();
    let store = ObservationStore::with_defaults_sharded(&defaults, k, spec.shards);
    let mut engine = Engine::offline(store, policy.build_policy(seed), oracle.est_cost(), &cfg);
    let mut fault = FaultKnob { rate: cfg.probe_fail_rate, rng: cfg.fault_rng() };
    let mut active_rows = env.initial_rows;
    let mut shift_idx = 1usize;
    for ev in &spec.drift {
        run_until(&mut engine, oracle, &mut fault, ev.at_frac * env.budget);
        match ev.kind {
            DriftKind::AddQueries { count } => {
                let new_active = (active_rows + count).min(oracle.shape().0);
                let defaults: Vec<f64> = (active_rows..new_active)
                    .map(|i| oracle.true_latency(i, WorkloadMatrix::DEFAULT_HINT))
                    .collect();
                engine.step(Event::AddQueries { defaults });
                active_rows = new_active;
            }
            DriftKind::DataShift { .. } => {
                let new_oracle = &env.oracles[shift_idx];
                shift_idx += 1;
                let wm = engine.wm();
                let n = wm.n_rows().min(new_oracle.shape().0);
                let observations = data_shift_observations(wm, engine.retention(), n, |r, c| {
                    new_oracle.true_latency(r, c)
                });
                oracle = new_oracle;
                engine.set_est_cost(oracle.est_cost());
                engine.step(Event::DataShift { new_rows: n, observations });
                active_rows = n;
            }
        }
    }
    let _ = active_rows;
    run_until(&mut engine, oracle, &mut fault, env.budget);
    let wm = engine.wm();
    let final_latency = (0..wm.n_rows())
        .filter_map(|i| wm.row_best(i).map(|(col, _)| oracle.true_latency(i, col)))
        .sum();
    EngineRun {
        trace: engine.trace().to_vec(),
        time_spent: engine.time_spent(),
        cells: engine.cells_executed(),
        censored: wm.censored_count(),
        final_latency,
    }
}

/// The service path for an online scenario: `Arrival`/`Observation` events
/// against a raw online engine. Returns the stats plus the same derived
/// cell counts [`run_online_seed`] reports.
fn online_seed_via_engine(
    spec: &ScenarioSpec,
    env: &Env,
    seed: u64,
) -> (limeqo_core::online::OnlineStats, usize, usize) {
    use limeqo_core::matrix::WorkloadMatrix;
    use limeqo_core::store::ObservationStore;
    use limeqo_core::{Action, Engine, Event};

    let oracle = &env.oracles[0];
    let mut cfg = spec.policy.online_config(seed).expect("online policy spec");
    cfg.shards = spec.shards;
    let (n, k) = oracle.shape();
    let defaults: Vec<f64> =
        (0..n).map(|i| oracle.true_latency(i, WorkloadMatrix::DEFAULT_HINT)).collect();
    let store = ObservationStore::with_defaults_sharded(&defaults, k, spec.shards);
    let mut engine = Engine::online(store, spec.policy.build_completer(seed), &cfg);
    let trace = spec.arrivals.as_ref().expect("online scenario has arrivals").trace(n, seed);
    for &row in &trace {
        let actions = engine.step(Event::Arrival { row });
        for action in actions {
            if let Action::Probe { row, col, timeout } = action {
                let truth = oracle.true_latency(row, col);
                let censored = truth > timeout;
                let value = if censored { timeout } else { truth };
                engine.step(Event::Observation { row, col, value, censored });
            }
        }
    }
    let cells = engine.wm().complete_count() - n + engine.stats().cancelled;
    (engine.stats().clone(), cells, engine.wm().censored_count())
}

/// Bitwise comparison of two [`EngineRun`] trajectories: the full trace
/// (row, column, charged-time bits, censored flag) plus the clock, cell
/// counts, and final workload latency. `labels` names the two sides in
/// the error message.
fn compare_engine_runs(
    name: &str,
    seed: u64,
    a: &EngineRun,
    b: &EngineRun,
    labels: (&str, &str),
) -> Result<(), String> {
    let (la, lb) = labels;
    if a.trace.len() != b.trace.len() {
        return Err(format!(
            "{name} seed {seed}: trace length diverges ({la} {} vs {lb} {})",
            a.trace.len(),
            b.trace.len()
        ));
    }
    for (i, (x, y)) in a.trace.iter().zip(b.trace.iter()).enumerate() {
        let same = x.row == y.row
            && x.col == y.col
            && x.charged.to_bits() == y.charged.to_bits()
            && x.censored == y.censored;
        if !same {
            return Err(format!(
                "{name} seed {seed}: trace entry {i} diverges ({la} {x:?} vs {lb} {y:?})"
            ));
        }
    }
    let checks = [
        ("time_spent", a.time_spent, b.time_spent),
        ("cells", a.cells as f64, b.cells as f64),
        ("censored", a.censored as f64, b.censored as f64),
        ("final_latency", a.final_latency, b.final_latency),
    ];
    for (what, x, y) in checks {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{name} seed {seed}: {what} diverges ({la} {x} vs {lb} {y})"));
        }
    }
    Ok(())
}

/// Drive every seed of `spec` twice — once through the legacy harness
/// drivers, once through the raw engine event API — and fail on the first
/// bitwise divergence. This is the refactor's equivalence oath: the
/// service hosts the *same* exploration, not an approximation of it.
pub fn verify_scenario_via_engine(spec: &ScenarioSpec) -> Result<(), String> {
    spec.validate();
    let env = build_env(spec);
    for &seed in &spec.seeds {
        if spec.policy.is_online() {
            let legacy = run_online_seed(spec, &env, seed);
            let (stats, cells, censored) = online_seed_via_engine(spec, &env, seed);
            let l = &legacy.stats;
            let pairs = [
                ("arrivals", l.arrivals as f64, stats.arrivals as f64),
                ("explored", l.explored as f64, stats.explored as f64),
                ("wins", l.wins as f64, stats.wins as f64),
                ("cancelled", l.cancelled as f64, stats.cancelled as f64),
                ("total_latency", l.total_latency, stats.total_latency),
                ("default_latency", l.default_latency, stats.default_latency),
                ("incumbent_latency", l.incumbent_latency, stats.incumbent_latency),
                ("cells", legacy.cells as f64, cells as f64),
                ("censored", legacy.censored as f64, censored as f64),
            ];
            for (what, a, b) in pairs {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "{} seed {seed}: {what} diverges (harness {a} vs engine {b})",
                        spec.name
                    ));
                }
            }
        } else {
            let a = offline_seed_via_explorer(spec, &env, &spec.policy, seed);
            let b = offline_seed_via_engine(spec, &env, &spec.policy, seed);
            compare_engine_runs(&spec.name, seed, &a, &b, ("harness", "engine"))?;
        }
    }
    Ok(())
}

/// The sharded-equivalence oath: run every seed of `spec` once with the
/// unsharded workload matrix and once partitioned into `shards` shards,
/// and fail on the first bitwise divergence — trace entries, clocks,
/// cell counts, censored counts, and the final workload latency (offline)
/// or the full online statistics (online). The shard count must be a pure
/// scale-out knob; this is the check that keeps it one.
pub fn verify_scenario_sharded(spec: &ScenarioSpec, shards: usize) -> Result<(), String> {
    spec.validate();
    let mut base = spec.clone();
    base.shards = 1;
    let mut split = spec.clone();
    split.shards = shards;
    // The environment (oracle chain, budget) never depends on the shard
    // layout, so it is built once and shared by both sides.
    let env = build_env(spec);
    for &seed in &spec.seeds {
        if spec.policy.is_online() {
            let a = run_online_seed(&base, &env, seed);
            let b = run_online_seed(&split, &env, seed);
            let (sa, sb) = (&a.stats, &b.stats);
            let pairs = [
                ("arrivals", sa.arrivals as f64, sb.arrivals as f64),
                ("explored", sa.explored as f64, sb.explored as f64),
                ("wins", sa.wins as f64, sb.wins as f64),
                ("cancelled", sa.cancelled as f64, sb.cancelled as f64),
                ("total_latency", sa.total_latency, sb.total_latency),
                ("default_latency", sa.default_latency, sb.default_latency),
                ("incumbent_latency", sa.incumbent_latency, sb.incumbent_latency),
                ("max_regression_ratio", a.max_ratio, b.max_ratio),
                ("final_latency", a.final_latency, b.final_latency),
                ("cells", a.cells as f64, b.cells as f64),
                ("censored", a.censored as f64, b.censored as f64),
            ];
            for (what, x, y) in pairs {
                if x.to_bits() != y.to_bits() {
                    return Err(format!(
                        "{} seed {seed}: {what} diverges (1 shard {x} vs {shards} shards {y})",
                        spec.name
                    ));
                }
            }
        } else {
            let a = offline_seed_via_explorer(&base, &env, &spec.policy, seed);
            let b = offline_seed_via_explorer(&split, &env, &spec.policy, seed);
            compare_engine_runs(&spec.name, seed, &a, &b, ("1 shard", "sharded"))?;
        }
    }
    Ok(())
}

/// Run many scenarios crossbeam-parallel (each scenario also fans its
/// seeds out); results come back in input order.
pub fn run_scenarios(specs: &[ScenarioSpec]) -> Vec<ScenarioOutcome> {
    let mut slots: Vec<Option<ScenarioOutcome>> = (0..specs.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, spec) in slots.iter_mut().zip(specs.iter()) {
            scope.spawn(move |_| *slot = Some(run_scenario(spec)));
        }
    })
    .expect("scenario fan-out");
    slots.into_iter().map(|s| s.expect("scenario ran")).collect()
}

/// The whole report as a JSON array (one object per scenario).
pub fn report_json(outcomes: &[ScenarioOutcome]) -> Json {
    Json::Arr(outcomes.iter().map(|o| o.to_json()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use limeqo_sim::scenario::{by_name, ArrivalModel, ArrivalSpec, HintShape};

    #[test]
    fn hint_prefix_shrinks_columns() {
        let mut spec = by_name("hint-prefix-9").expect("registered");
        spec.seeds = vec![1];
        assert_eq!(spec.hint_shape, HintShape::Prefix(9));
        let out = run_scenario(&spec);
        assert_eq!(out.k, 9);
        assert!(out.final_latency <= out.default_total + 1e-9);
    }

    #[test]
    fn synthetic_scenario_runs_without_sim_layer() {
        let mut spec = by_name("censor-hostile").expect("registered");
        spec.seeds = vec![7];
        let out = run_scenario(&spec);
        assert!(out.monotone_ok);
        assert!(out.censored_cells > 0.0, "hostile regime must censor");
    }

    #[test]
    fn online_outcome_has_bounded_regression() {
        let mut spec = by_name("online-uniform").expect("registered");
        spec.seeds = vec![3];
        spec.arrivals = Some(ArrivalSpec::new(600, ArrivalModel::Uniform));
        let out = run_scenario(&spec);
        let online = out.online.expect("online outcome");
        assert!(online.rho_bound_ok);
        assert!(online.max_regression_ratio <= 1.2 + 1.0 + 1e-9);
        assert!(online.final_latency <= out.default_total + 1e-9);
    }

    #[test]
    fn data_shifts_compound() {
        use limeqo_sim::scenario::{DriftEvent, DriftKind};
        let mut single = by_name("data-shift").expect("registered");
        single.seeds = vec![1];
        single.drift =
            vec![DriftEvent { at_frac: 0.4, kind: DriftKind::DataShift { days: 365.0 } }];
        let mut double = single.clone();
        double.drift = vec![
            DriftEvent { at_frac: 0.3, kind: DriftKind::DataShift { days: 365.0 } },
            DriftEvent { at_frac: 0.6, kind: DriftKind::DataShift { days: 365.0 } },
        ];
        let one = run_scenario(&single);
        let two = run_scenario(&double);
        // Two 365-day shifts age the database ~730 days: growth compounds,
        // so the final regime's default total must exceed a single year's.
        assert!(
            two.default_total > one.default_total,
            "shifts did not compound: {} vs {}",
            two.default_total,
            one.default_total
        );
    }

    #[test]
    fn metrics_keys_are_prefixed_and_unique() {
        let mut spec = by_name("job-mini").expect("registered");
        spec.seeds = vec![1];
        let out = run_scenario(&spec);
        let metrics = out.metrics();
        let mut keys: Vec<&String> = metrics.iter().map(|(k, _)| k).collect();
        assert!(keys.iter().all(|k| k.starts_with("job-mini.")));
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), metrics.len());
        let json = report_json(&[out]).render();
        assert!(json.starts_with('[') && json.contains("\"name\":\"job-mini\""));
    }
}
