//! Text tables and CSV emission for the figure binaries.
//!
//! Every figure binary prints a human-readable table (paper value next to
//! measured value where the paper states one) and writes the raw series as
//! CSV under `bench-results/` so EXPERIMENTS.md can reference them.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(s, "{:>width$}  ", cell, width = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write the table as CSV into `bench-results/<name>.csv`.
    pub fn write_csv_named(&self, name: &str) -> std::io::Result<PathBuf> {
        let rows: Vec<Vec<String>> =
            std::iter::once(self.header.clone()).chain(self.rows.iter().cloned()).collect();
        write_csv(name, &rows)
    }
}

/// Directory all figure binaries write their raw series to.
pub fn results_dir() -> PathBuf {
    let root = std::env::var("LIMEQO_RESULTS_DIR").unwrap_or_else(|_| {
        // Walk up from the crate to the workspace root if running via cargo.
        let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
        let p = Path::new(&manifest);
        p.ancestors()
            .nth(2)
            .unwrap_or(Path::new("."))
            .join("bench-results")
            .to_string_lossy()
            .into_owned()
    });
    PathBuf::from(root)
}

/// Write rows as `bench-results/<name>.csv`, creating the directory.
pub fn write_csv(name: &str, rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::new();
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        let _ = writeln!(body, "{}", line.join(","));
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// Minimal JSON value for machine-readable summaries (the scenario runner
/// emits one object per scenario). Numbers render with Rust's shortest
/// round-trip float formatting, so equal values always serialize to equal
/// bytes — which is what makes the emitted report stable enough to diff.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse a JSON document (the subset [`Json`] itself renders: objects,
    /// arrays, strings with the standard escapes, finite numbers, bools,
    /// null). Used by the perf emitter's self-check — `BENCH_*.json` must
    /// round-trip before CI trusts it.
    pub fn parse(s: &str) -> std::result::Result<Json, String> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Field lookup on an object (None for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Minimal recursive-descent parser behind [`Json::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> std::result::Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> std::result::Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> std::result::Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> std::result::Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("unexpected {other:?} in object")),
            }
        }
    }

    fn array(&mut self) -> std::result::Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("unexpected {other:?} in array")),
            }
        }
    }

    fn string(&mut self) -> std::result::Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> std::result::Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a JSON document as `bench-results/<name>.json`.
pub fn write_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, value.render())?;
    Ok(path)
}

/// Format seconds compactly (`2.94h`, `181s`, `85ms`).
pub fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "n/a".into()
    } else if s >= 3600.0 {
        format!("{:.2}h", s / 3600.0)
    } else if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns() {
        let mut t = Table::new("demo", &["a", "long-col"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-col"));
        assert!(s.contains('1'));
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.94 * 3600.0), "2.94h");
        assert_eq!(fmt_secs(181.0), "181s");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(0.085), "85ms");
        assert_eq!(fmt_secs(f64::INFINITY), "n/a");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn json_renders_compact_and_escaped() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\n".into())),
            ("ok".into(), Json::Bool(true)),
            ("vals".into(), Json::Arr(vec![Json::Num(1.5), Json::Num(f64::NAN), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"name":"a\"b\\c\n","ok":true,"vals":[1.5,null,null]}"#);
    }

    #[test]
    fn json_numbers_roundtrip_shortest() {
        assert_eq!(Json::Num(0.1).render(), "0.1");
        assert_eq!(Json::Num(3.0).render(), "3");
    }

    #[test]
    fn json_parse_roundtrips_rendered_documents() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("a\"b\\c\nd\tе".into())),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("vals".into(), Json::Arr(vec![Json::Num(1.5), Json::Num(-2e-3), Json::Num(3.0)])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&v.render()).expect("round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn json_parse_accepts_whitespace_and_unicode_escapes() {
        let parsed = Json::parse(" { \"k\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(parsed.get("k"), Some(&Json::Arr(vec![Json::Num(1.0), Json::Str("A".into())])));
        assert_eq!(parsed.get("k").and_then(|v| v.as_num()), None);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn json_get_and_as_num_accessors() {
        let v = Json::parse("{\"a\":2.5,\"b\":\"x\"}").unwrap();
        assert_eq!(v.get("a").and_then(|x| x.as_num()), Some(2.5));
        assert!(v.get("b").and_then(|x| x.as_num()).is_none());
        assert!(v.get("missing").is_none());
        assert!(Json::Num(1.0).get("a").is_none());
    }
}
