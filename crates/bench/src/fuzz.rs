//! Scenario fuzzing: run generated specs through the real runner and
//! assert the calibrated invariants of PRs 2–3 on each.
//!
//! The generator and shrinker live in `limeqo_sim::scenario_fuzz` (they
//! only need the spec types); this module owns the expensive half — the
//! invariant oracle [`check_outcome`] and the driver [`run_fuzz`] that
//! generates N cases, minimizes any failure with the sim shrinker, and
//! dumps the minimized spec as a corpus file under
//! `bench-results/fuzz-failures/` so it can be replayed with
//! `scenario fuzz --replay <file>` and, once understood, committed to
//! `scenarios/broken/` as a regression fixture.
//!
//! Invariant tolerances are deliberately looser than the hand-calibrated
//! registry's (`LIMEQO_VS_RANDOM_TOL` is 5 % here vs 2 % there): the
//! registry scenarios were tuned to their budgets, while fuzzed specs draw
//! budgets and matrices at random. The invariants asserted are the ones
//! that must hold for *any* valid spec, not just friendly ones.

use std::path::{Path, PathBuf};

use limeqo_sim::scenario::{ScenarioSpec, ScenarioWorkload};
use limeqo_sim::scenario_fuzz::{generate, shrink};
use limeqo_sim::to_json_string;

use crate::scenario_runner::{run_scenario, ScenarioOutcome};

/// Absolute slack for latency comparisons (float accumulation order).
const ABS_TOL: f64 = 1e-9;

/// LimeQO (censored or not) may trail Random by at most this factor on a
/// drift-free workload it never saw. Looser than the registry's 2 %
/// because fuzzed budgets are arbitrary, but tight enough that a policy
/// regression (losing the low-rank signal entirely) still trips it.
pub const LIMEQO_VS_RANDOM_TOL: f64 = 1.05;

/// The median bound for multi-seed *Sim* workloads. Sim oracles carry no
/// low-rank ground truth, so on a tiny catalog LimeQO holds no structural
/// edge and can legitimately trail Random by a modest median margin (the
/// 1,200-seed calibration sweep measured honest losses up to ~1.26x at
/// in-envelope ranks). This bound is therefore a *collapse detector*, not
/// a competitiveness claim: the regressions the fuzzer exists to catch —
/// the incremental-tunneling cliff, the no-censoring ablation — blow past
/// 1.5x, while the honest model-mismatch losses stay well under it.
/// Synthetic workloads keep [`LIMEQO_VS_RANDOM_TOL`] even on the median
/// path: there the low-rank structure holds by construction.
pub const SIM_MEDIAN_COLLAPSE_TOL: f64 = 1.5;

/// One confirmed fuzz failure: the generating seed (when the case came
/// from the generator), the original and minimized specs, and why.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Generator seed that produced the case; `None` for replayed files.
    pub case_seed: Option<u64>,
    /// The spec as generated/loaded.
    pub original: ScenarioSpec,
    /// First violated invariant of the *original* spec — the shrinker may
    /// land on a different (usually narrower) violation, so calibration
    /// work needs both.
    pub original_reason: String,
    /// The smallest spec the shrinker found that still fails.
    pub minimized: ScenarioSpec,
    /// First violated invariant of the *minimized* spec.
    pub reason: String,
    /// Where the minimized spec was dumped, when a dump dir was given.
    pub dump_path: Option<PathBuf>,
}

/// Summary of one fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: usize,
    /// Confirmed, minimized failures (empty on a green run).
    pub failures: Vec<FuzzFailure>,
}

/// Assert every calibrated invariant on a finished scenario run. Returns
/// the first violation as an actionable message.
pub fn check_outcome(spec: &ScenarioSpec, o: &ScenarioOutcome) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{}: {msg}", spec.name));

    // Ordering: the oracle optimum bounds everything from below, the
    // default plan from above. `final` is the workload latency at budget
    // exhaustion (offline) or after the trace (online).
    if o.optimal_total > o.default_total + ABS_TOL {
        return fail(format!(
            "optimal {} exceeds default {} (oracle ordering broken)",
            o.optimal_total, o.default_total
        ));
    }
    let final_latency = o.online.as_ref().map(|on| on.final_latency).unwrap_or(o.final_latency);
    if final_latency < o.optimal_total - ABS_TOL {
        return fail(format!(
            "final {} beat the oracle optimum {}",
            final_latency, o.optimal_total
        ));
    }
    if final_latency > o.default_total + ABS_TOL {
        return fail(format!("final {} regressed past default {}", final_latency, o.default_total));
    }

    // Best-so-far is monotone non-increasing within every drift segment.
    if !o.monotone_ok {
        return fail("latency trajectory regressed within a segment".into());
    }

    // Censoring is bounded: a probe can be censored only by running.
    if o.censored_cells > o.cells_executed + ABS_TOL {
        return fail(format!(
            "censored {} cells but only executed {}",
            o.censored_cells, o.cells_executed
        ));
    }

    // LimeQO must hold its own against Random at equal budget on
    // drift-free workloads (the paper's core claim). With >= 3 seeds the
    // comparison is *median vs median* — the luck-robust form: on
    // heavy-tailed workloads (tiny Sim catalogs) Random can genuinely win
    // a single seed by luck, but a real policy regression shifts every
    // seed, so the median still trips. Sim medians get the collapse bound
    // (see [`SIM_MEDIAN_COLLAPSE_TOL`]); synthetic medians keep the tight
    // competitive bound. Fewer than 3 seeds keeps the historic mean
    // comparison (with 1–2 seeds a median is no more robust than a mean,
    // and the pinned `scenarios/broken/` fixtures rely on the mean path
    // to keep failing).
    if spec.policy.expects_to_beat_random() && spec.drift.is_empty() {
        let random_seeds = o
            .random_seed_final_latencies
            .as_deref()
            .ok_or_else(|| format!("{}: runner dropped the random reference", spec.name))?;
        let (ours, random, form, tol) = if spec.seeds.len() >= 3 {
            let tol = if matches!(spec.workload, ScenarioWorkload::Sim(_)) {
                SIM_MEDIAN_COLLAPSE_TOL
            } else {
                LIMEQO_VS_RANDOM_TOL
            };
            (median(&o.seed_final_latencies), median(random_seeds), "median", tol)
        } else {
            let random = o
                .random_final_latency
                .ok_or_else(|| format!("{}: runner dropped the random reference", spec.name))?;
            (o.final_latency, random, "mean", LIMEQO_VS_RANDOM_TOL)
        };
        if ours > random * tol + ABS_TOL {
            return fail(format!(
                "limeqo {form} {ours} worse than random {form} {random} beyond the {tol}x \
                 tolerance"
            ));
        }
    }

    if let Some(online) = &o.online {
        // Every arrival obeys experienced <= (rho + 1) x incumbent.
        if !online.rho_bound_ok {
            return fail("an arrival exceeded the rho regression bound".into());
        }
        let rho = match spec.policy {
            limeqo_core::scenario::PolicySpec::OnlineAls { rho, .. } => rho,
            _ => return fail("online outcome from a non-online policy".into()),
        };
        if online.max_regression_ratio > rho + 1.0 + ABS_TOL {
            return fail(format!(
                "max per-arrival regression {} exceeds rho + 1 = {}",
                online.max_regression_ratio,
                rho + 1.0
            ));
        }
        // The same bound integrates over the trace.
        if online.total_latency > (rho + 1.0) * online.default_latency + ABS_TOL {
            return fail(format!(
                "online total {} exceeds (rho + 1) x always-default {}",
                online.total_latency,
                (rho + 1.0) * online.default_latency
            ));
        }
        // Open-loop queue accounting, present iff the spec sets a rate.
        let expects_queue = spec.arrivals.as_ref().is_some_and(|a| a.rate > 0.0);
        match (expects_queue, online.queue_wait_mean, online.queue_wait_max) {
            (true, Some(mean), Some(max)) => {
                if mean < 0.0 || max < mean - ABS_TOL {
                    return fail(format!("queue waits inconsistent: mean {mean}, max {max}"));
                }
            }
            (false, None, None) => {}
            _ => return fail("queue-wait metrics present iff the spec sets a rate".into()),
        }
    }
    Ok(())
}

/// Seed-order-independent median (total order over f64 via `total_cmp`;
/// even counts average the middle pair).
fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    if v.is_empty() {
        return 0.0;
    }
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// Run one spec through the scenario runner and check every invariant.
pub fn check_spec(spec: &ScenarioSpec) -> Result<(), String> {
    spec.check()?;
    let outcome = run_scenario(spec);
    check_outcome(spec, &outcome)
}

/// Minimize a failing spec with the sim shrinker, re-running the full
/// invariant check as the failure predicate.
pub fn minimize(spec: &ScenarioSpec) -> (ScenarioSpec, String) {
    let minimized = shrink(spec, &mut |candidate| check_spec(candidate).is_err());
    let reason = check_spec(&minimized).expect_err("shrink only keeps failing specs");
    (minimized, reason)
}

/// Generate `count` cases starting at `start_seed`, check each, and
/// minimize + dump any failure. Deterministic for a fixed
/// `(start_seed, count)`.
pub fn run_fuzz(start_seed: u64, count: usize, dump_dir: Option<&Path>) -> FuzzReport {
    let mut failures = Vec::new();
    for i in 0..count {
        let case_seed = start_seed.wrapping_add(i as u64);
        let spec = generate(case_seed);
        if let Err(original_reason) = check_spec(&spec) {
            let (minimized, reason) = minimize(&spec);
            let dump_path = dump_dir.map(|dir| {
                dump_failure(dir, case_seed, &spec, &original_reason, &minimized, &reason)
            });
            failures.push(FuzzFailure {
                case_seed: Some(case_seed),
                original: spec,
                original_reason,
                minimized,
                reason,
                dump_path,
            });
        }
    }
    FuzzReport { cases: count, failures }
}

/// Write the minimized spec (as a replayable corpus file), the original
/// spec, and both failure reasons next to each other under `dir`.
fn dump_failure(
    dir: &Path,
    case_seed: u64,
    original: &ScenarioSpec,
    original_reason: &str,
    minimized: &ScenarioSpec,
    reason: &str,
) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create fuzz dump dir");
    let spec_path = dir.join(format!("fuzz-{case_seed:016x}.json"));
    std::fs::write(&spec_path, to_json_string(minimized)).expect("dump minimized spec");
    std::fs::write(
        dir.join(format!("fuzz-{case_seed:016x}.original.json")),
        to_json_string(original),
    )
    .expect("dump original spec");
    std::fs::write(
        dir.join(format!("fuzz-{case_seed:016x}.reason.txt")),
        format!(
            "original: {original_reason}\nminimized: {reason}\nreplay: scenario fuzz --replay {}\n",
            spec_path.display()
        ),
    )
    .expect("dump failure reason");
    spec_path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_smoke_is_green() {
        // The CI smoke uses seed 1, N=8; keep a 2-case prefix here so a
        // generator or invariant regression fails in `cargo test` already.
        let report = run_fuzz(1, 2, None);
        assert_eq!(report.cases, 2);
        assert!(
            report.failures.is_empty(),
            "fuzz smoke found failures: {:?}",
            report.failures.iter().map(|f| &f.reason).collect::<Vec<_>>()
        );
    }

    #[test]
    fn invariant_checker_accepts_a_registry_scenario() {
        let spec = limeqo_sim::scenario::by_name("censor-hostile").expect("registered");
        check_spec(&spec).expect("registry scenario must satisfy every fuzz invariant");
    }

    #[test]
    fn invariant_checker_rejects_a_doctored_outcome() {
        let spec = limeqo_sim::scenario::by_name("censor-hostile").expect("registered");
        let mut outcome = run_scenario(&spec);
        outcome.final_latency = outcome.optimal_total * 0.5; // impossible: beats the oracle
        let err = check_outcome(&spec, &outcome).unwrap_err();
        assert!(err.contains("beat the oracle"), "{err}");
    }
}
