//! Workload construction and multi-seed technique runs.
//!
//! Figure binaries all follow the same pattern: build a workload oracle
//! (cached in-process), run each technique for several seeds with crossbeam
//! fan-out, and sample the curves at the paper's budget multiples.

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::metrics::Curve;
use limeqo_core::policy::{
    BaoCachePolicy, BayesQoRunner, GreedyPolicy, LimeQoPolicy, Policy, QoAdvisorPolicy,
    RandomPolicy,
};
use limeqo_core::AlsCompleter;
use limeqo_sim::workloads::{OracleMatrices, Workload, WorkloadSpec};
use limeqo_tcnn::{PlainTcnnCompleter, TcnnConfig, TransductiveTcnnCompleter};

/// Which paper workload to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// JOB: 113 queries, IMDb-like.
    Job,
    /// CEB: 3133 queries, IMDb-like.
    Ceb,
    /// Stack 2019: 6191 queries.
    Stack,
    /// Stack 2017 snapshot (data-shift experiments).
    Stack2017,
    /// DSB: 1040 queries from 52 templates.
    Dsb,
}

impl WorkloadKind {
    /// The generator spec.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            WorkloadKind::Job => WorkloadSpec::job(),
            WorkloadKind::Ceb => WorkloadSpec::ceb(),
            WorkloadKind::Stack => WorkloadSpec::stack(),
            WorkloadKind::Stack2017 => WorkloadSpec::stack_2017(),
            WorkloadKind::Dsb => WorkloadSpec::dsb(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Job => "JOB",
            WorkloadKind::Ceb => "CEB",
            WorkloadKind::Stack => "Stack",
            WorkloadKind::Stack2017 => "Stack-2017",
            WorkloadKind::Dsb => "DSB",
        }
    }

    /// Paper Table 1 `(queries, default seconds, optimal seconds)`.
    pub fn paper_stats(&self) -> (usize, f64, f64) {
        match self {
            WorkloadKind::Job => (113, 181.0, 68.0),
            WorkloadKind::Ceb => (3133, 2.94 * 3600.0, 1.02 * 3600.0),
            WorkloadKind::Stack => (6191, 1.46 * 3600.0, 1.09 * 3600.0),
            WorkloadKind::Stack2017 => (6191, 1.16 * 3600.0, 0.90 * 3600.0),
            WorkloadKind::Dsb => (1040, 4.75 * 3600.0, 2.74 * 3600.0),
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "job" => Some(WorkloadKind::Job),
            "ceb" => Some(WorkloadKind::Ceb),
            "stack" => Some(WorkloadKind::Stack),
            "stack2017" | "stack-2017" => Some(WorkloadKind::Stack2017),
            "dsb" => Some(WorkloadKind::Dsb),
            _ => None,
        }
    }
}

/// Build a workload (optionally scaled down) and its oracle matrices.
pub fn build_oracle(kind: WorkloadKind, scale: f64) -> (Workload, OracleMatrices, MatOracle) {
    let spec = if scale < 1.0 { kind.spec().scaled(scale) } else { kind.spec() };
    let mut w = spec.build();
    let o = w.build_oracle();
    let mat = MatOracle::new(o.true_latency.clone(), Some(o.est_cost.clone()));
    (w, o, mat)
}

/// The six techniques of Fig. 5 plus the plain-TCNN ablation of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Random unobserved cells.
    Random,
    /// Longest-running-query-first.
    Greedy,
    /// Lowest-optimizer-cost-first (QO-Advisor adapted).
    QoAdvisor,
    /// Bao adapted to offline exploration (plain TCNN model).
    BaoCache,
    /// LimeQO: Algorithm 1 + censored ALS.
    LimeQo,
    /// LimeQO without the censored technique (Fig. 16 ablation).
    LimeQoNoCensor,
    /// LimeQO+: Algorithm 1 + transductive TCNN.
    LimeQoPlus,
    /// LimeQO+ without the censored loss (Fig. 16 ablation).
    LimeQoPlusNoCensor,
    /// Pure TCNN inside Algorithm 1 (Fig. 12 ablation: no embeddings).
    Tcnn,
}

impl Technique {
    /// Display name (figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Random => "Random",
            Technique::Greedy => "Greedy",
            Technique::QoAdvisor => "QO-Advisor",
            Technique::BaoCache => "Bao-Cache",
            Technique::LimeQo => "LimeQO",
            Technique::LimeQoNoCensor => "LimeQO(wocensored)",
            Technique::LimeQoPlus => "LimeQO+",
            Technique::LimeQoPlusNoCensor => "LimeQO+(wocensored)",
            Technique::Tcnn => "TCNN",
        }
    }

    /// The Fig. 5 six.
    pub fn fig5() -> [Technique; 6] {
        [
            Technique::QoAdvisor,
            Technique::BaoCache,
            Technique::Random,
            Technique::Greedy,
            Technique::LimeQo,
            Technique::LimeQoPlus,
        ]
    }

    /// Whether this technique trains a neural network each step.
    pub fn is_neural(&self) -> bool {
        matches!(
            self,
            Technique::BaoCache
                | Technique::LimeQoPlus
                | Technique::LimeQoPlusNoCensor
                | Technique::Tcnn
        )
    }
}

/// Construct the policy for a technique. Neural techniques featurize the
/// workload's plans (one-off cost, included in the policy's first-step
/// overhead in the paper's accounting; we meter it separately at build).
pub fn technique_policy<'a>(
    technique: Technique,
    workload: &'a Workload,
    rank: usize,
    seed: u64,
    tcnn_cfg: &TcnnConfig,
) -> Box<dyn Policy + 'a> {
    match technique {
        Technique::Random => Box::new(RandomPolicy),
        Technique::Greedy => Box::new(GreedyPolicy),
        Technique::QoAdvisor => Box::new(QoAdvisorPolicy),
        Technique::LimeQo => {
            Box::new(LimeQoPolicy::new(Box::new(AlsCompleter::with_rank(rank, seed)), "limeqo"))
        }
        Technique::LimeQoNoCensor => Box::new(LimeQoPolicy::new(
            Box::new(AlsCompleter::without_censoring(seed)),
            "limeqo-wocensored",
        )),
        Technique::BaoCache => Box::new(BaoCachePolicy::new(Box::new(PlainTcnnCompleter::new(
            workload,
            tcnn_cfg.clone(),
            seed,
        )))),
        Technique::LimeQoPlus => Box::new(LimeQoPolicy::new(
            Box::new(TransductiveTcnnCompleter::new(workload, rank, tcnn_cfg.clone(), seed)),
            "limeqo+",
        )),
        Technique::LimeQoPlusNoCensor => {
            let mut cfg = tcnn_cfg.clone();
            cfg.censored_loss = false;
            Box::new(LimeQoPolicy::new(
                Box::new(TransductiveTcnnCompleter::new(workload, rank, cfg, seed)),
                "limeqo+wocensored",
            ))
        }
        Technique::Tcnn => Box::new(LimeQoPolicy::new(
            Box::new(PlainTcnnCompleter::new(workload, tcnn_cfg.clone(), seed)),
            "tcnn",
        )),
    }
}

/// Run one technique for one seed up to `time_budget` exploration seconds.
#[allow(clippy::too_many_arguments)]
pub fn run_technique(
    technique: Technique,
    workload: &Workload,
    oracle: &MatOracle,
    time_budget: f64,
    batch: usize,
    rank: usize,
    seed: u64,
    tcnn_cfg: &TcnnConfig,
) -> Curve {
    let policy = technique_policy(technique, workload, rank, seed, tcnn_cfg);
    let cfg = ExploreConfig { batch, seed, ..Default::default() };
    let n = oracle.latency().rows();
    let mut explorer = Explorer::new(oracle, policy, cfg, n);
    explorer.run_until(time_budget);
    let mut curve = explorer.into_curve();
    curve.name = technique.name().to_string();
    curve
}

/// Run a technique across seeds in parallel, returning one curve per seed.
#[allow(clippy::too_many_arguments)]
pub fn run_techniques(
    technique: Technique,
    workload: &Workload,
    oracle: &MatOracle,
    time_budget: f64,
    batch: usize,
    rank: usize,
    seeds: &[u64],
    tcnn_cfg: &TcnnConfig,
) -> Vec<Curve> {
    let mut out: Vec<Option<Curve>> = vec![None; seeds.len()];
    crossbeam::thread::scope(|scope| {
        for (slot, &seed) in out.iter_mut().zip(seeds.iter()) {
            scope.spawn(move |_| {
                *slot = Some(run_technique(
                    technique,
                    workload,
                    oracle,
                    time_budget,
                    batch,
                    rank,
                    seed,
                    tcnn_cfg,
                ));
            });
        }
    })
    .expect("seed fan-out");
    out.into_iter().map(|c| c.expect("curve")).collect()
}

/// Run the BayesQO baseline (per-query budgets; §5.6).
pub fn run_bayes_qo(oracle: &MatOracle, per_query_budget: f64, seed: u64) -> Curve {
    BayesQoRunner { per_query_budget, ..BayesQoRunner::paper_default(seed) }.run(oracle)
}
