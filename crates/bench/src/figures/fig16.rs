//! Fig. 16: censored-technique ablation — LimeQO and LimeQO+ with and
//! without censored handling, on CEB.
//!
//! Shape to reproduce: the censored variants converge faster with less
//! variance (the paper's LimeQO+ with censoring needed 0.5 h of
//! exploration for the 2× reduction vs 0.9 h without — a 1.8× gap).
//!
//! Extra ablations beyond the paper (DESIGN.md §6): `--nonneg` also runs
//! ALS without the non-negativity projection; `--alphas` sweeps the
//! timeout multiplier α.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, run_techniques, technique_policy, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};
use limeqo_core::explore::{ExploreConfig, Explorer};
use limeqo_core::metrics::mean_std;
use limeqo_core::policy::LimeQoPolicy;
use limeqo_core::AlsCompleter;

/// Regenerate Fig. 16.
pub fn run(opts: &FigOpts) {
    let extra_nonneg = std::env::args().any(|a| a == "--nonneg");
    let extra_alpha = std::env::args().any(|a| a == "--alphas");
    let kind = WorkloadKind::Ceb;
    let scale = opts.scale_for(kind);
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    let horizon = 2.04 * matrices.default_total;
    let grid: Vec<f64> = (0..=16).map(|i| horizon * i as f64 / 16.0).collect();
    let tcnn_cfg = opts.tcnn_cfg();

    let mut csv = vec![vec![
        "series".to_string(),
        "explore_time_s".to_string(),
        "latency_mean_s".to_string(),
        "latency_std_s".to_string(),
    ]];
    let mut table = Table::new(
        "Fig 16 — censored ablation (CEB)",
        &["series", "latency@0.5x", "latency@1x", "latency@2x", "std@1x"],
    );
    let pairs = [
        Technique::LimeQo,
        Technique::LimeQoNoCensor,
        Technique::LimeQoPlus,
        Technique::LimeQoPlusNoCensor,
    ];
    for technique in pairs {
        let seeds = opts.seeds(technique.is_neural());
        let curves = run_techniques(
            technique, &workload, &oracle, horizon, opts.batch, opts.rank, &seeds, &tcnn_cfg,
        );
        for &t in &grid {
            let vals: Vec<f64> = curves.iter().map(|c| c.latency_at(t)).collect();
            let (mean, std) = mean_std(&vals);
            csv.push(vec![
                technique.name().into(),
                format!("{t:.1}"),
                format!("{mean:.3}"),
                format!("{std:.3}"),
            ]);
        }
        let stat = |frac: f64| {
            let vals: Vec<f64> =
                curves.iter().map(|c| c.latency_at(frac * matrices.default_total)).collect();
            mean_std(&vals)
        };
        table.row(&[
            technique.name().to_string(),
            fmt_secs(stat(0.5).0),
            fmt_secs(stat(1.0).0),
            fmt_secs(stat(2.0).0),
            fmt_secs(stat(1.0).1),
        ]);
    }
    table.print();

    if extra_nonneg {
        let mut t2 = Table::new(
            "extra ablation — ALS non-negativity projection",
            &["series", "latency@1x", "latency@2x"],
        );
        for nonneg in [true, false] {
            let seeds = opts.seeds(false);
            let curves: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let mut als = AlsCompleter::paper_default(seed);
                    als.nonneg = nonneg;
                    let policy =
                        LimeQoPolicy::new(Box::new(als), if nonneg { "nn" } else { "raw" });
                    let cfg = ExploreConfig { batch: opts.batch, seed, ..Default::default() };
                    let mut ex = Explorer::new(&oracle, Box::new(policy), cfg, workload.n());
                    ex.run_until(horizon);
                    ex.into_curve()
                })
                .collect();
            let at = |f: f64| {
                fmt_secs(
                    curves.iter().map(|c| c.latency_at(f * matrices.default_total)).sum::<f64>()
                        / curves.len() as f64,
                )
            };
            t2.row(&[format!("nonneg={nonneg}"), at(1.0), at(2.0)]);
        }
        t2.print();
    }
    if extra_alpha {
        let mut t3 = Table::new(
            "extra ablation — timeout multiplier alpha",
            &["alpha", "latency@1x", "latency@2x"],
        );
        for alpha in [2.0, 5.0, 10.0, f64::INFINITY] {
            let seeds = opts.seeds(false);
            let curves: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    let mut policy = LimeQoPolicy::with_als(seed);
                    policy.alpha = alpha;
                    let cfg = ExploreConfig { batch: opts.batch, seed, ..Default::default() };
                    let mut ex = Explorer::new(&oracle, Box::new(policy), cfg, workload.n());
                    ex.run_until(horizon);
                    ex.into_curve()
                })
                .collect();
            let at = |f: f64| {
                fmt_secs(
                    curves.iter().map(|c| c.latency_at(f * matrices.default_total)).sum::<f64>()
                        / curves.len() as f64,
                )
            };
            t3.row(&[format!("{alpha}"), at(1.0), at(2.0)]);
        }
        t3.print();
    }
    // Silence unused warning when extras are off.
    let _ = technique_policy;
    let p = write_csv("fig16", &csv).expect("fig16 csv");
    println!("[fig16] wrote {}", p.display());
}
