//! Fig. 17: matrix completion techniques on the JOB workload matrix —
//! NUC vs SVT vs ALS, accuracy (held-out MSE) vs wall-clock time at fill
//! proportions p ∈ {0.1, 0.2, 0.25, 0.3}.
//!
//! Shape to reproduce: NUC accurate but slow (> 0.5 s even on the small
//! JOB matrix); SVT failing at p = 0.1; ALS best accuracy/overhead balance
//! everywhere.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, WorkloadKind};
use crate::report::{write_csv, Table};
use limeqo_core::complete::{AlsCompleter, Completer, NucCompleter, SvtCompleter};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// Fill proportions of the paper's Fig. 17 (p > 0.3 never occurs in their
/// exploration runs, hence the cap).
pub const FILLS: [f64; 4] = [0.1, 0.2, 0.25, 0.3];

fn observed_at_fill(truth: &Mat, p: f64, seed: u64) -> WorkloadMatrix {
    let mut rng = SeededRng::new(seed);
    let (n, k) = truth.shape();
    let mut wm = WorkloadMatrix::new(n, k);
    // Default column always observed (it is in practice), then random fill
    // to reach p overall.
    for i in 0..n {
        wm.set_complete(i, 0, truth[(i, 0)]);
    }
    let want = ((n * k) as f64 * p) as usize;
    let mut extra: Vec<(usize, usize)> = (0..n).flat_map(|i| (1..k).map(move |j| (i, j))).collect();
    rng.shuffle(&mut extra);
    for &(i, j) in extra.iter().take(want.saturating_sub(n)) {
        wm.set_complete(i, j, truth[(i, j)]);
    }
    wm
}

fn heldout_mse(truth: &Mat, pred: &Mat, wm: &WorkloadMatrix) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, j) in wm.unobserved_cells() {
        let d = truth[(i, j)] - pred[(i, j)];
        sum += d * d;
        count += 1;
    }
    sum / count.max(1) as f64
}

/// Regenerate Fig. 17.
pub fn run(opts: &FigOpts) {
    // The paper's point needs the real JOB matrix; the smoke tier only
    // needs the three completers exercised, so it shrinks the workload
    // (NUC's per-iteration SVD dominates otherwise).
    let scale = if opts.smoke { opts.scale_for(WorkloadKind::Job).max(0.2) } else { 1.0 };
    let (_w, matrices, _) = build_oracle(WorkloadKind::Job, scale);
    let truth = &matrices.true_latency;
    let repeats = if opts.fast { 2 } else { 5 };

    let mut table = Table::new(
        "Fig 17 — completion on the JOB matrix (MSE | seconds)",
        &["p", "ALS", "SVT", "NUC"],
    );
    let mut csv =
        vec![vec!["p".to_string(), "method".to_string(), "mse".to_string(), "seconds".to_string()]];
    for &p in &FILLS {
        let mut cells: Vec<String> = vec![format!("{p}")];
        for method in ["als", "svt", "nuc"] {
            let mut mses = Vec::new();
            let mut times = Vec::new();
            for rep in 0..repeats {
                let wm = observed_at_fill(truth, p, 0x6017 + rep as u64 * 31 + (p * 100.0) as u64);
                let started = std::time::Instant::now();
                let pred = match method {
                    "als" => AlsCompleter::paper_default(rep as u64).complete(&wm),
                    "svt" => SvtCompleter::default().complete(&wm),
                    _ => NucCompleter::default().complete(&wm),
                };
                times.push(started.elapsed().as_secs_f64());
                mses.push(heldout_mse(truth, &pred, &wm));
            }
            let mse = mses.iter().sum::<f64>() / mses.len() as f64;
            let time = times.iter().sum::<f64>() / times.len() as f64;
            cells.push(format!("{mse:9.1} | {time:.4}s"));
            csv.push(vec![
                format!("{p}"),
                method.to_string(),
                format!("{mse:.3}"),
                format!("{time:.5}"),
            ]);
        }
        table.row(&cells);
    }
    table.print();
    println!(
        "[fig17] paper shape: ALS cheapest at good accuracy; NUC accurate but >0.5s; SVT weak at p=0.1"
    );
    let path = write_csv("fig17", &csv).expect("fig17 csv");
    println!("[fig17] wrote {}", path.display());
}
