//! Fig. 14: singular value spectrum of the (complete) CEB workload matrix
//! versus a random matrix of the same shape — the evidence for the
//! low-rank assumption.
//!
//! Shape to reproduce: a few large singular values followed by a rapidly
//! decaying tail for the workload matrix; a flat spectrum for the random
//! matrix.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, WorkloadKind};
use crate::report::{write_csv, Table};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::svd_thin;

/// Regenerate Fig. 14 (always full-scale: only an SVD is involved).
pub fn run(_opts: &FigOpts) {
    let (_w, matrices, _) = build_oracle(WorkloadKind::Ceb, 1.0);
    let w = &matrices.true_latency;
    let svd = svd_thin(w).expect("workload svd");

    // Random matrix of the same shape and comparable magnitude.
    let mut rng = SeededRng::new(0xF14);
    let mean = w.sum() / w.len() as f64;
    let random = rng.uniform_mat(w.rows(), w.cols(), 0.0, 2.0 * mean);
    let svd_r = svd_thin(&random).expect("random svd");

    let mut csv = vec![vec!["index".to_string(), "sv_ceb".to_string(), "sv_random".to_string()]];
    for i in 0..svd.s.len() {
        csv.push(vec![format!("{i}"), format!("{:.4}", svd.s[i]), format!("{:.4}", svd_r.s[i])]);
    }
    let energy = |s: &[f64], k: usize| {
        let top: f64 = s.iter().take(k).map(|x| x * x).sum();
        let tot: f64 = s.iter().map(|x| x * x).sum();
        100.0 * top / tot
    };
    let mut table = Table::new(
        "Fig 14 — singular values (CEB vs random)",
        &["matrix", "s1/s5 ratio", "top-5 energy %", "top-10 energy %"],
    );
    table.row(&[
        "CEB workload".into(),
        format!("{:.1}", svd.s[0] / svd.s[4]),
        format!("{:.1}", energy(&svd.s, 5)),
        format!("{:.1}", energy(&svd.s, 10)),
    ]);
    table.row(&[
        "random".into(),
        format!("{:.1}", svd_r.s[0] / svd_r.s[4]),
        format!("{:.1}", energy(&svd_r.s, 5)),
        format!("{:.1}", energy(&svd_r.s, 10)),
    ]);
    table.print();
    println!(
        "[fig14] paper shape: workload matrix has few large singular values (r < 10 captures most information)"
    );
    let p = write_csv("fig14", &csv).expect("fig14 csv");
    println!("[fig14] wrote {}", p.display());
}
