//! Fig. 11: complete data shift on Stack — explore the 2017 snapshot, then
//! swap in the two-years-later database and keep exploring.
//!
//! Shape to reproduce: after the shift LimeQO starts from the old best
//! hints (still ~14 % better than default, §5.4), and recovers to the
//! fresh-start-on-new-data trajectory within ~0.5 h. Also reports the §5.4
//! side statistics: old-vs-new default/optimal totals and the fraction of
//! queries keeping their optimal hint (paper: 79 %).

use crate::figures::{FigOpts, BUDGET_MULTIPLES};
use crate::harness::{build_oracle, technique_policy, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};
use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::metrics::Curve;
use limeqo_sim::drift::{build_oracle_uncalibrated, drift_workload, optimal_hint_change_fraction};

/// Regenerate Fig. 11.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Stack2017;
    let scale = opts.scale_for(kind);
    let (workload_2017, m2017, oracle_2017) = build_oracle(kind, scale);
    // Two years of drift produce the 2019 snapshot.
    let workload_2019 = drift_workload(&workload_2017, 730.0, 0x2019);
    let m2019 = build_oracle_uncalibrated(&workload_2019);
    let oracle_2019 = MatOracle::new(m2019.true_latency.clone(), Some(m2019.est_cost.clone()));
    let same = 100.0 * (1.0 - optimal_hint_change_fraction(&m2017, &m2019));
    println!(
        "[fig11] 2017: default {} optimal {} | 2019: default {} optimal {} | same best hints {:.0}% (paper 79%)",
        fmt_secs(m2017.default_total),
        fmt_secs(m2017.optimal_total),
        fmt_secs(m2019.default_total),
        fmt_secs(m2019.optimal_total),
        same
    );
    // Old best hints applied to new data (paper: 1.46 h -> 1.26 h, 14%).
    let old_best_on_new: f64 = (0..m2017.true_latency.rows())
        .map(|i| {
            let (h, _) = m2017.true_latency.row_min(i).unwrap();
            m2019.true_latency[(i, h)]
        })
        .sum();
    println!(
        "[fig11] old best hints on 2019 data: {} ({:.0}% below the 2019 default; paper 14%)",
        fmt_secs(old_best_on_new),
        100.0 * (1.0 - old_best_on_new / m2019.default_total)
    );

    // Explore 2017 for 4 h-equivalent (4/1.16 × default), shift, then
    // continue; measure at the paper's multiples of the 2019 default (the
    // paper's 1.5 h "default workload time" axis).
    let explore_2017 = (4.0 / 1.16) * m2017.default_total;
    let budgets_2019: Vec<f64> = BUDGET_MULTIPLES.iter().map(|m| m * m2019.default_total).collect();
    let mut table = Table::new(
        "Fig 11 — data shift on Stack (latency on 2019 data)",
        &["series", "0.25x", "0.5x", "1x", "2x", "4x"],
    );
    let mut csv =
        vec![vec!["series".to_string(), "budget_multiple".to_string(), "latency_s".to_string()]];

    let mut push_series = |name: &str, curves: &[Curve]| {
        let mut row = vec![name.to_string()];
        for (i, &b) in budgets_2019.iter().enumerate() {
            let lat = curves.iter().map(|c| c.latency_at(b)).sum::<f64>() / curves.len() as f64;
            row.push(fmt_secs(lat));
            csv.push(vec![
                name.to_string(),
                format!("{}", BUDGET_MULTIPLES[i]),
                format!("{lat:.3}"),
            ]);
        }
        table.row(&row);
    };

    // LimeQO with the data shift: explore 2017, shift, continue. The curve
    // recorded after the shift is what the figure plots; time is re-zeroed
    // at the shift by subtracting the pre-shift exploration time.
    let seeds = opts.seeds(false);
    let shifted: Vec<Curve> = seeds
        .iter()
        .map(|&seed| {
            let policy = technique_policy(
                Technique::LimeQo,
                &workload_2017,
                opts.rank,
                seed,
                &opts.tcnn_cfg(),
            );
            let cfg = ExploreConfig { batch: opts.batch, seed, ..Default::default() };
            let mut ex = Explorer::new(&oracle_2017, policy, cfg, workload_2017.n());
            ex.run_until(explore_2017);
            let t_shift = ex.time_spent();
            ex.data_shift(&oracle_2019);
            ex.run_until(t_shift + budgets_2019[4]);
            let mut c = ex.into_curve();
            // Re-zero at the shift.
            c.points.retain(|p| p.time >= t_shift);
            for p in &mut c.points {
                p.time -= t_shift;
            }
            c
        })
        .collect();
    push_series("LimeQO (DataShift)", &shifted);

    // Baselines exploring the 2019 data from scratch.
    for technique in [Technique::LimeQo, Technique::Greedy, Technique::Random] {
        let curves: Vec<Curve> = seeds
            .iter()
            .map(|&seed| {
                let policy =
                    technique_policy(technique, &workload_2019, opts.rank, seed, &opts.tcnn_cfg());
                let cfg = ExploreConfig { batch: opts.batch, seed, ..Default::default() };
                let mut ex = Explorer::new(&oracle_2019, policy, cfg, workload_2019.n());
                ex.run_until(budgets_2019[4]);
                ex.into_curve()
            })
            .collect();
        push_series(technique.name(), &curves);
    }
    table.print();
    let p = write_csv("fig11", &csv).expect("fig11 csv");
    println!("[fig11] wrote {}", p.display());
}
