//! Fig. 10: incremental data updates on Stack — % of queries whose optimal
//! hint changes after data intervals from 1 day to 2 years.
//!
//! Paper values: negligible at 1 day, ~1 % after a month, ~5 % after 6
//! months, ~10 % after 1 year, ~21 % after 2 years.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, WorkloadKind};
use crate::report::{write_csv, Table};
use limeqo_sim::drift::{build_oracle_uncalibrated, drift_workload, optimal_hint_change_fraction};

/// Intervals (days) and the paper's approximate Y values (%).
pub const INTERVALS: [(f64, &str, f64); 8] = [
    (1.0, "1 day", 0.0),
    (7.0, "1 week", 0.3),
    (14.0, "2 weeks", 0.5),
    (30.0, "1 month", 1.0),
    (91.0, "3 months", 3.0),
    (182.0, "6 months", 5.0),
    (365.0, "1 year", 10.0),
    (730.0, "2 years", 21.0),
];

/// Regenerate Fig. 10.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Stack;
    // Hint-change fractions need enough queries to be stable; use a larger
    // scale than exploration figures (oracle building is cheap).
    let scale = if opts.smoke {
        opts.scale_for(kind)
    } else if opts.fast {
        0.15
    } else {
        0.5f64.max(opts.scale_for(kind))
    };
    let (workload, base, _) = build_oracle(kind, scale);
    println!("[fig10] Stack scale={scale} n={}", workload.n());
    let mut table = Table::new(
        "Fig 10 — % queries with changed optimal hint",
        &["interval", "paper %", "measured %"],
    );
    let mut csv = vec![vec![
        "days".to_string(),
        "interval".to_string(),
        "paper_pct".to_string(),
        "measured_pct".to_string(),
    ]];
    for (days, label, paper) in INTERVALS {
        let drifted = drift_workload(&workload, days, 0xD01F + days as u64);
        let oracle = build_oracle_uncalibrated(&drifted);
        let frac = 100.0 * optimal_hint_change_fraction(&base, &oracle);
        table.row(&[label.to_string(), format!("{paper:.1}"), format!("{frac:.1}")]);
        csv.push(vec![
            format!("{days}"),
            label.to_string(),
            format!("{paper}"),
            format!("{frac:.2}"),
        ]);
    }
    table.print();
    let p = write_csv("fig10", &csv).expect("fig10 csv");
    println!("[fig10] wrote {}", p.display());
}
