//! Fig. 15: rank sensitivity — LimeQO and LimeQO+ across r ∈ {1,2,3,5,7,9}.
//!
//! Shape to reproduce: LimeQO needs r ≥ 3 (ranks 1–2 fail to capture the
//! matrix structure) and then stabilizes; LimeQO+ is robust across all
//! ranks thanks to the TCNN plan features.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, run_techniques, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};

/// Ranks swept (paper's Fig. 15 set).
pub const RANKS: [usize; 6] = [1, 2, 3, 5, 7, 9];

/// Regenerate Fig. 15.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Ceb;
    let scale = opts.scale_for(kind);
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    let horizon = 2.04 * matrices.default_total;
    let tcnn_cfg = opts.tcnn_cfg();
    let probe_times: Vec<f64> =
        [0.25, 0.5, 1.0, 2.0].iter().map(|m| m * matrices.default_total).collect();

    let mut csv = vec![vec![
        "technique".to_string(),
        "rank".to_string(),
        "budget_multiple".to_string(),
        "latency_s".to_string(),
    ]];
    let mut table = Table::new(
        "Fig 15 — rank sweep (CEB, latency at 1x default time)",
        &["technique", "r=1", "r=2", "r=3", "r=5", "r=7", "r=9"],
    );
    // LimeQO sweeps all ranks (cheap); LimeQO+ sweeps a subset unless
    // --full (each run trains a TCNN).
    let neural_ranks: Vec<usize> = if opts.full { RANKS.to_vec() } else { vec![1, 2, 5, 9] };
    for technique in [Technique::LimeQo, Technique::LimeQoPlus] {
        let mut row = vec![technique.name().to_string()];
        for &rank in &RANKS {
            let runs_this = technique != Technique::LimeQoPlus || neural_ranks.contains(&rank);
            if !runs_this {
                row.push("-".into());
                continue;
            }
            let seeds = opts.seeds(technique.is_neural());
            let curves = run_techniques(
                technique, &workload, &oracle, horizon, opts.batch, rank, &seeds, &tcnn_cfg,
            );
            for (i, &t) in probe_times.iter().enumerate() {
                let lat = curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64;
                csv.push(vec![
                    technique.name().into(),
                    format!("{rank}"),
                    format!("{}", [0.25, 0.5, 1.0, 2.0][i]),
                    format!("{lat:.3}"),
                ]);
            }
            let lat1x = curves.iter().map(|c| c.latency_at(matrices.default_total)).sum::<f64>()
                / curves.len() as f64;
            row.push(fmt_secs(lat1x));
        }
        table.row(&row);
    }
    table.print();
    let p = write_csv("fig15", &csv).expect("fig15 csv");
    println!("[fig15] wrote {}", p.display());
}
