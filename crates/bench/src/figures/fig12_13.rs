//! Fig. 12 (TCNN vs LimeQO+ total latency) and Fig. 13 (their overhead) on
//! CEB — the ablation isolating the value of the low-rank embeddings
//! inside the transductive TCNN.
//!
//! Shape to reproduce: LimeQO+ consistently below the plain TCNN
//! throughout exploration (Fig. 12), at a modest extra overhead
//! (~20 minutes after 6 h in the paper, Fig. 13).

use crate::figures::FigOpts;
use crate::harness::{build_oracle, run_techniques, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};

/// Regenerate Figs. 12 and 13.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Ceb;
    let scale = opts.scale_for(kind);
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    let horizon = 2.04 * matrices.default_total; // paper: 0..6 h of 2.94 h
    let grid: Vec<f64> = (0..=16).map(|i| horizon * i as f64 / 16.0).collect();
    let tcnn_cfg = opts.tcnn_cfg();

    let mut fig12 =
        vec![vec!["technique".to_string(), "explore_time_s".to_string(), "latency_s".to_string()]];
    let mut fig13 =
        vec![vec!["technique".to_string(), "explore_time_s".to_string(), "overhead_s".to_string()]];
    let mut table = Table::new(
        "Fig 12/13 — TCNN vs LimeQO+ (CEB)",
        &["technique", "latency@0.5x", "latency@end", "overhead@end"],
    );
    for technique in [Technique::Tcnn, Technique::LimeQoPlus] {
        let seeds = opts.seeds(true);
        let curves = run_techniques(
            technique, &workload, &oracle, horizon, opts.batch, opts.rank, &seeds, &tcnn_cfg,
        );
        for &t in &grid {
            let lat = curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64;
            let ovh = curves.iter().map(|c| c.overhead_at(t)).sum::<f64>() / curves.len() as f64;
            fig12.push(vec![technique.name().into(), format!("{t:.1}"), format!("{lat:.3}")]);
            fig13.push(vec![technique.name().into(), format!("{t:.1}"), format!("{ovh:.4}")]);
        }
        let lat_at = |t: f64| {
            fmt_secs(curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64)
        };
        table.row(&[
            technique.name().to_string(),
            lat_at(0.5 * matrices.default_total),
            lat_at(horizon),
            fmt_secs(
                curves.iter().map(|c| c.overhead_at(horizon)).sum::<f64>() / curves.len() as f64,
            ),
        ]);
    }
    table.print();
    let p12 = write_csv("fig12", &fig12).expect("fig12 csv");
    let p13 = write_csv("fig13", &fig13).expect("fig13 csv");
    println!("[fig12/13] wrote {} and {}", p12.display(), p13.display());
}
