//! Fig. 18: LimeQO vs BayesQO on JOB — workload-level vs per-query
//! exploration-time allocation.
//!
//! "For BayesQO, each query in the workload was allocated a fixed
//! optimization time of three seconds … our approach achieves significant
//! progress in optimizing the workload, whereas BayesQO barely makes
//! progress on any single query."

use crate::figures::FigOpts;
use crate::harness::{build_oracle, run_bayes_qo, run_techniques, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};

/// Per-query budget in the paper (seconds).
pub const PER_QUERY_BUDGET: f64 = 3.0;

/// Regenerate Fig. 18.
pub fn run(opts: &FigOpts) {
    let (workload, matrices, oracle) = build_oracle(WorkloadKind::Job, 1.0);
    // Paper x-axis: 0..~350 s ≈ 113 queries × 3 s.
    let horizon = workload.n() as f64 * PER_QUERY_BUDGET;
    let grid: Vec<f64> = (0..=20).map(|i| horizon * i as f64 / 20.0).collect();

    let seeds = opts.seeds(false);
    let limeqo = run_techniques(
        Technique::LimeQo,
        &workload,
        &oracle,
        horizon,
        opts.batch.min(8), // small workload: smaller batches track the curve
        opts.rank,
        &seeds,
        &opts.tcnn_cfg(),
    );
    let bayes: Vec<_> = seeds.iter().map(|&s| run_bayes_qo(&oracle, PER_QUERY_BUDGET, s)).collect();

    let mut csv =
        vec![vec!["technique".to_string(), "explore_time_s".to_string(), "latency_s".to_string()]];
    for (name, curves) in [("LimeQO", &limeqo), ("BayesQO", &bayes)] {
        for &t in &grid {
            let lat = curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64;
            csv.push(vec![name.to_string(), format!("{t:.1}"), format!("{lat:.3}")]);
        }
    }
    let mut table = Table::new(
        "Fig 18 — LimeQO vs BayesQO (JOB)",
        &["technique", "latency@120s", "latency@240s", "latency@end"],
    );
    for (name, curves) in [("LimeQO", &limeqo), ("BayesQO", &bayes)] {
        let at = |t: f64| {
            fmt_secs(curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64)
        };
        table.row(&[name.to_string(), at(120.0), at(240.0), at(horizon)]);
    }
    table.print();
    println!(
        "[fig18] default {} — LimeQO should cut deep within {}; BayesQO barely moves",
        fmt_secs(matrices.default_total),
        fmt_secs(horizon)
    );
    let p = write_csv("fig18", &csv).expect("fig18 csv");
    println!("[fig18] wrote {}", p.display());
}
