//! Fig. 8: the Greedy trap — an ETL query added to the Stack workload.
//!
//! "This ETL query loads the joined results … into a CSV file, which takes
//! 576.5 seconds to execute. It is obvious that changing query optimizer
//! hints will not reduce the runtime … Greedy persistently explores the
//! long ETL query at each exploration step … LimeQO utilizes the
//! predictive model to recognize that the potential gain … is low."

use crate::figures::FigOpts;
use crate::harness::{build_oracle, run_techniques, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};
use limeqo_core::explore::MatOracle;

/// ETL latency in the paper (seconds); scaled with the workload.
pub const PAPER_ETL_SECONDS: f64 = 576.5;

/// Regenerate Fig. 8.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Stack;
    // Matrix completion needs enough rows to recognize the flat ETL row;
    // run this (linear-only) figure at a larger scale than the neural ones.
    let floor = if opts.smoke { 0.0 } else { 0.35 };
    let scale = if opts.full { 1.0 } else { opts.scale_for(kind).max(floor) };
    let (mut workload, _m0, _) = build_oracle(kind, scale);
    // Add the write-bound ETL query, scaled like the workload; the
    // calibration target grows by the ETL time so the rest of the
    // workload keeps its original latencies (paper: 1.46 h -> 1.62 h).
    workload.add_etl_query(PAPER_ETL_SECONDS * scale);
    workload.spec.target_default_total += PAPER_ETL_SECONDS * scale;
    let matrices = workload.build_oracle();
    let oracle = MatOracle::new(matrices.true_latency.clone(), Some(matrices.est_cost.clone()));
    println!(
        "[fig08] Stack+ETL: default {} (paper: 1.46 h -> 1.62 h after adding the ETL query)",
        fmt_secs(matrices.default_total)
    );
    // Paper plots 0..3.25 h on a 1.62 h workload ≈ 2 × default.
    let horizon = 2.0 * matrices.default_total;
    let grid: Vec<f64> = (0..=20).map(|i| horizon * i as f64 / 20.0).collect();
    let tcnn_cfg = opts.tcnn_cfg();

    let mut csv =
        vec![vec!["technique".to_string(), "explore_time_s".to_string(), "latency_s".to_string()]];
    let mut table =
        Table::new("Fig 8 — Greedy vs LimeQO with ETL query", &["technique", "@1x", "@2x"]);
    for technique in [Technique::Greedy, Technique::LimeQo] {
        let seeds = opts.seeds(false);
        // Small batches sharpen the contrast: Greedy re-probes the ETL
        // query every step, so the fraction of each step it wastes is
        // ~1/batch.
        let batch = opts.batch.min(8);
        let curves = run_techniques(
            technique, &workload, &oracle, horizon, batch, opts.rank, &seeds, &tcnn_cfg,
        );
        for &t in &grid {
            let lat = curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64;
            csv.push(vec![technique.name().into(), format!("{t:.1}"), format!("{lat:.3}")]);
        }
        let at = |frac: f64| {
            fmt_secs(
                curves.iter().map(|c| c.latency_at(frac * matrices.default_total)).sum::<f64>()
                    / curves.len() as f64,
            )
        };
        table.row(&[technique.name().to_string(), at(1.0), at(2.0)]);
    }
    table.print();
    let p = write_csv("fig08", &csv).expect("fig08 csv");
    println!("[fig08] wrote {}", p.display());
}
