//! Fig. 6 (total latency vs exploration time on CEB) and Fig. 7
//! (cumulative model overhead, LimeQO vs LimeQO+) — both come from the
//! same exploration runs, so one harness emits both CSVs.
//!
//! Paper claims to reproduce in shape: LimeQO reduces latency fastest at
//! the very start; LimeQO+ overtakes after ~20 minutes; LimeQO+'s
//! cumulative overhead is orders of magnitude above LimeQO's (360× on
//! their CPU).

use crate::figures::FigOpts;
use crate::harness::{build_oracle, run_techniques, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};

/// Regenerate Figs. 6 and 7.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Ceb;
    let scale = opts.scale_for(kind);
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    // Paper plots 0..6 h on a 2.94 h workload ≈ 2 × default total.
    let horizon = 2.04 * matrices.default_total;
    let grid: Vec<f64> = (0..=24).map(|i| horizon * i as f64 / 24.0).collect();
    let tcnn_cfg = opts.tcnn_cfg();

    let mut fig6 =
        vec![vec!["technique".to_string(), "explore_time_s".to_string(), "latency_s".to_string()]];
    let mut fig7 =
        vec![vec!["technique".to_string(), "explore_time_s".to_string(), "overhead_s".to_string()]];
    let mut summary =
        Table::new("Fig 6/7 — CEB curves", &["technique", "latency@end", "overhead@end"]);
    for technique in Technique::fig5() {
        let seeds = opts.seeds(technique.is_neural());
        let curves = run_techniques(
            technique, &workload, &oracle, horizon, opts.batch, opts.rank, &seeds, &tcnn_cfg,
        );
        for &t in &grid {
            let lat: f64 =
                curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64;
            let ovh: f64 =
                curves.iter().map(|c| c.overhead_at(t)).sum::<f64>() / curves.len() as f64;
            fig6.push(vec![technique.name().into(), format!("{t:.1}"), format!("{lat:.3}")]);
            if matches!(technique, Technique::LimeQo | Technique::LimeQoPlus) {
                fig7.push(vec![technique.name().into(), format!("{t:.1}"), format!("{ovh:.4}")]);
            }
        }
        summary.row(&[
            technique.name().to_string(),
            fmt_secs(
                curves.iter().map(|c| c.latency_at(horizon)).sum::<f64>() / curves.len() as f64,
            ),
            fmt_secs(
                curves.iter().map(|c| c.overhead_at(horizon)).sum::<f64>() / curves.len() as f64,
            ),
        ]);
    }
    summary.print();
    // Overhead ratio headline (paper: 360× on CPU).
    let ovh = |name: &str| -> f64 {
        fig7.iter()
            .skip(1)
            .rfind(|r| r[0] == name)
            .and_then(|r| r[2].parse().ok())
            .unwrap_or(f64::NAN)
    };
    let ratio = ovh("LimeQO+") / ovh("LimeQO").max(1e-9);
    println!(
        "[fig07] final overhead: LimeQO {} LimeQO+ {} ratio {:.0}x (paper: 10 s vs ~3600 s, 360x)",
        fmt_secs(ovh("LimeQO")),
        fmt_secs(ovh("LimeQO+")),
        ratio
    );
    let p6 = write_csv("fig06", &fig6).expect("fig06 csv");
    let p7 = write_csv("fig07", &fig7).expect("fig07 csv");
    println!("[fig06/07] wrote {} and {}", p6.display(), p7.display());
}
