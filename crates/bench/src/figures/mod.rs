//! One module per paper table/figure. Each exposes `run(&FigOpts)`; the
//! `src/bin/` binaries are thin wrappers, and `bin/all` chains everything.

pub mod fig05;
pub mod fig06_07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod table1;

use crate::harness::WorkloadKind;
use limeqo_tcnn::TcnnConfig;

/// Common figure options, parsed from CLI args.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Reduced scales/seeds for CI-style smoke runs (`--fast`).
    pub fast: bool,
    /// Paper-faithful scales and five seeds (`--full`; hours of CPU).
    pub full: bool,
    /// Seeds for linear techniques.
    pub seeds_linear: usize,
    /// Seeds for neural techniques (TCNN training is the expensive part).
    pub seeds_neural: usize,
    /// Exploration batch m (cells per step).
    pub batch: usize,
    /// Rank r for ALS and embeddings (paper default 5).
    pub rank: usize,
    /// Test-suite mode ([`FigOpts::smoke`]): tiny workloads, test-scale
    /// TCNN, and figure-level floors relaxed — numbers are meaningless,
    /// only the code paths are exercised.
    pub smoke: bool,
    /// Force this workload scale regardless of figure-level defaults.
    pub scale_override: Option<f64>,
}

impl Default for FigOpts {
    fn default() -> Self {
        FigOpts {
            fast: false,
            full: false,
            seeds_linear: 3,
            seeds_neural: 1,
            batch: 32,
            rank: 5,
            smoke: false,
            scale_override: None,
        }
    }
}

impl FigOpts {
    /// Options for the `figures_fast` integration tests: one seed, a large
    /// batch, a tiny forced scale and the test-scale TCNN, so every figure
    /// module's full code path runs in seconds.
    pub fn smoke() -> Self {
        FigOpts {
            fast: true,
            smoke: true,
            seeds_linear: 1,
            seeds_neural: 1,
            batch: 64,
            scale_override: Some(0.03),
            ..Default::default()
        }
    }

    /// Parse `--fast`, `--full`, `--seeds N`, `--batch N`, `--rank N`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut o = FigOpts::default();
        let mut it = args.iter().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--fast" => o.fast = true,
                "--full" => {
                    o.full = true;
                    o.seeds_linear = 5;
                    o.seeds_neural = 5;
                }
                "--seeds" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        o.seeds_linear = v;
                        o.seeds_neural = v;
                    }
                }
                "--batch" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        o.batch = v;
                    }
                }
                "--rank" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        o.rank = v;
                    }
                }
                _ => {}
            }
        }
        if o.fast {
            o.seeds_linear = o.seeds_linear.min(2);
            o.seeds_neural = 1;
        }
        o
    }

    /// Workload down-scaling for exploration experiments. Full runs use the
    /// paper's query counts; the default keeps neural experiments tractable
    /// on CPU (recorded in EXPERIMENTS.md).
    pub fn scale_for(&self, kind: WorkloadKind) -> f64 {
        if self.full {
            return 1.0;
        }
        if let Some(scale) = self.scale_override {
            return scale.clamp(0.001, 1.0);
        }
        let base = match kind {
            WorkloadKind::Job => 1.0,
            WorkloadKind::Ceb => 0.25,
            WorkloadKind::Stack | WorkloadKind::Stack2017 => 0.12,
            WorkloadKind::Dsb => 0.4,
        };
        if self.fast {
            (base * 0.35_f64).clamp(0.02, 1.0)
        } else {
            base
        }
    }

    /// Seeds for a technique.
    pub fn seeds(&self, neural: bool) -> Vec<u64> {
        let count = if neural { self.seeds_neural } else { self.seeds_linear };
        (0..count as u64).map(|s| 1000 + 17 * s).collect()
    }

    /// TCNN configuration.
    pub fn tcnn_cfg(&self) -> TcnnConfig {
        if self.smoke {
            TcnnConfig::test_scale()
        } else if self.full {
            TcnnConfig::paper_scale()
        } else if self.fast {
            TcnnConfig { max_epochs: 20, warm_epochs: 8, ..TcnnConfig::default() }
        } else {
            TcnnConfig::default()
        }
    }
}

/// The paper's Fig. 5 budget multiples of the default workload time.
pub const BUDGET_MULTIPLES: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts_sane() {
        let o = FigOpts::default();
        assert!(o.seeds_linear >= 1 && o.rank == 5);
        assert!(o.scale_for(WorkloadKind::Job) == 1.0);
        assert!(o.scale_for(WorkloadKind::Ceb) < 1.0);
    }

    #[test]
    fn full_uses_unit_scale() {
        let o = FigOpts { full: true, ..Default::default() };
        for k in [WorkloadKind::Job, WorkloadKind::Ceb, WorkloadKind::Stack, WorkloadKind::Dsb] {
            assert_eq!(o.scale_for(k), 1.0);
        }
    }

    #[test]
    fn seeds_distinct() {
        let o = FigOpts::default();
        let s = o.seeds(false);
        let mut d = s.clone();
        d.dedup();
        assert_eq!(s.len(), d.len());
    }
}
