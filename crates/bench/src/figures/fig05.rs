//! Fig. 5: total workload latency after {¼, ½, 1, 2, 4} × the default
//! workload time of offline exploration — six techniques, four workloads.
//!
//! Also emits the §5.1 side observation: how many cells each technique
//! explored ("LimeQO and LimeQO+ explored fewer queries over the offline
//! exploration period").

use crate::figures::{FigOpts, BUDGET_MULTIPLES};
use crate::harness::{build_oracle, run_techniques, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};
use limeqo_core::metrics::aggregate_at;

/// Run Fig. 5 for one workload; returns CSV rows.
fn run_workload(kind: WorkloadKind, opts: &FigOpts) -> Vec<Vec<String>> {
    let scale = opts.scale_for(kind);
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    let default_total = matrices.default_total;
    let budgets: Vec<f64> = BUDGET_MULTIPLES.iter().map(|m| m * default_total).collect();
    let tcnn_cfg = opts.tcnn_cfg();

    println!(
        "[fig05] {} scale={scale} n={} default={} optimal={} headroom={:.2}x",
        kind.name(),
        workload.n(),
        fmt_secs(default_total),
        fmt_secs(matrices.optimal_total),
        matrices.headroom()
    );
    let mut table = Table::new(
        format!("Fig 5 — {} (optimal {})", kind.name(), fmt_secs(matrices.optimal_total)),
        &["technique", "0.25x", "0.5x", "1x", "2x", "4x", "cells@4x"],
    );
    let mut csv: Vec<Vec<String>> = Vec::new();
    for technique in Technique::fig5() {
        let seeds = opts.seeds(technique.is_neural());
        let curves = run_techniques(
            technique, &workload, &oracle, budgets[4], opts.batch, opts.rank, &seeds, &tcnn_cfg,
        );
        let agg = aggregate_at(&curves, &budgets);
        let cells =
            curves.iter().map(|c| c.explored_at(budgets[4])).sum::<usize>() / curves.len().max(1);
        let mut row = vec![technique.name().to_string()];
        for (mean, _std) in &agg {
            row.push(fmt_secs(*mean));
        }
        row.push(format!("{cells}"));
        table.row(&row);
        for (i, (mean, std)) in agg.iter().enumerate() {
            csv.push(vec![
                kind.name().to_string(),
                technique.name().to_string(),
                format!("{}", BUDGET_MULTIPLES[i]),
                format!("{mean}"),
                format!("{std}"),
                format!("{cells}"),
            ]);
        }
    }
    table.print();
    csv
}

/// Regenerate Fig. 5 across all four workloads.
pub fn run(opts: &FigOpts) {
    let mut rows = vec![vec![
        "workload".to_string(),
        "technique".to_string(),
        "budget_multiple".to_string(),
        "latency_mean_s".to_string(),
        "latency_std_s".to_string(),
        "cells_explored_4x".to_string(),
    ]];
    for kind in [WorkloadKind::Ceb, WorkloadKind::Job, WorkloadKind::Stack, WorkloadKind::Dsb] {
        rows.extend(run_workload(kind, opts));
    }
    let path = write_csv("fig05", &rows).expect("write fig05 csv");
    println!("[fig05] wrote {}", path.display());
}
