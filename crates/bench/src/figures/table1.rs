//! Table 1: the four workloads — query counts, default and optimal totals.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, WorkloadKind};
use crate::report::{fmt_secs, Table};

/// Regenerate Table 1. Workload construction always runs at full scale
/// here (oracle building is cheap; only exploration is scaled elsewhere).
pub fn run(_opts: &FigOpts) {
    let mut table = Table::new(
        "Table 1: workloads (paper -> measured)",
        &[
            "workload",
            "queries",
            "default(paper)",
            "default(ours)",
            "optimal(paper)",
            "optimal(ours)",
            "headroom(paper)",
            "headroom(ours)",
        ],
    );
    for kind in [WorkloadKind::Job, WorkloadKind::Ceb, WorkloadKind::Stack, WorkloadKind::Dsb] {
        let (w, m, _) = build_oracle(kind, 1.0);
        let (q_paper, d_paper, o_paper) = kind.paper_stats();
        assert_eq!(w.n(), q_paper, "query count must match the paper exactly");
        table.row(&[
            kind.name().to_string(),
            format!("{}", w.n()),
            fmt_secs(d_paper),
            fmt_secs(m.default_total),
            fmt_secs(o_paper),
            fmt_secs(m.optimal_total),
            format!("{:.2}x", d_paper / o_paper),
            format!("{:.2}x", m.headroom()),
        ]);
    }
    table.print();
    let _ = table.write_csv_named("table1");
}
