//! Fig. 9: workload shift on CEB — explore 70% of the queries for the
//! first stretch, then introduce the remaining 30%.
//!
//! Shape to reproduce: LimeQO absorbs the new queries and recovers to the
//! all-queries-from-the-start trajectory within ~0.5 h of processing them;
//! Greedy takes far longer.

use crate::figures::FigOpts;
use crate::harness::{build_oracle, technique_policy, Technique, WorkloadKind};
use crate::report::{fmt_secs, write_csv, Table};
use limeqo_core::explore::{ExploreConfig, Explorer};
use limeqo_core::metrics::Curve;

#[allow(clippy::too_many_arguments)]
fn run_with_shift(
    technique: Technique,
    workload: &limeqo_sim::workloads::Workload,
    oracle: &limeqo_core::explore::MatOracle,
    initial_rows: usize,
    shift_time: f64,
    horizon: f64,
    opts: &FigOpts,
    seed: u64,
) -> Curve {
    let policy = technique_policy(technique, workload, opts.rank, seed, &opts.tcnn_cfg());
    let cfg = ExploreConfig { batch: opts.batch, seed, ..Default::default() };
    let mut ex = Explorer::new(oracle, policy, cfg, initial_rows);
    ex.run_until(shift_time);
    let total = oracle.latency().rows();
    ex.add_queries(total - initial_rows);
    ex.run_until(horizon);
    ex.into_curve()
}

fn run_static(
    technique: Technique,
    workload: &limeqo_sim::workloads::Workload,
    oracle: &limeqo_core::explore::MatOracle,
    horizon: f64,
    opts: &FigOpts,
    seed: u64,
) -> Curve {
    let policy = technique_policy(technique, workload, opts.rank, seed, &opts.tcnn_cfg());
    let cfg = ExploreConfig { batch: opts.batch, seed, ..Default::default() };
    let n = oracle.latency().rows();
    let mut ex = Explorer::new(oracle, policy, cfg, n);
    ex.run_until(horizon);
    ex.into_curve()
}

/// Regenerate Fig. 9.
pub fn run(opts: &FigOpts) {
    let kind = WorkloadKind::Ceb;
    let scale = opts.scale_for(kind);
    let (workload, matrices, oracle) = build_oracle(kind, scale);
    let n = workload.n();
    let initial = (n as f64 * 0.7).round() as usize;
    // Paper: shift at 2 h of a 2.94 h workload, plot to 6 h.
    let shift_time = (2.0 / 2.94) * matrices.default_total;
    let horizon = (6.0 / 2.94) * matrices.default_total;
    println!(
        "[fig09] CEB n={n}, 70% = {initial} queries first, +30% at {} (horizon {})",
        fmt_secs(shift_time),
        fmt_secs(horizon)
    );
    let grid: Vec<f64> = (0..=24).map(|i| horizon * i as f64 / 24.0).collect();

    let mut csv =
        vec![vec!["series".to_string(), "explore_time_s".to_string(), "latency_s".to_string()]];
    let mut table =
        Table::new("Fig 9 — workload shift (CEB)", &["series", "latency@shift", "latency@end"]);
    for technique in [Technique::LimeQo, Technique::Greedy] {
        for shifted in [true, false] {
            let seeds = opts.seeds(false);
            let curves: Vec<Curve> = seeds
                .iter()
                .map(|&seed| {
                    if shifted {
                        run_with_shift(
                            technique, &workload, &oracle, initial, shift_time, horizon, opts, seed,
                        )
                    } else {
                        run_static(technique, &workload, &oracle, horizon, opts, seed)
                    }
                })
                .collect();
            let label = if shifted {
                format!("{} (with shift)", technique.name())
            } else {
                technique.name().to_string()
            };
            for &t in &grid {
                let lat = curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64;
                csv.push(vec![label.clone(), format!("{t:.1}"), format!("{lat:.3}")]);
            }
            let at = |t: f64| {
                fmt_secs(curves.iter().map(|c| c.latency_at(t)).sum::<f64>() / curves.len() as f64)
            };
            table.row(&[label, at(shift_time), at(horizon)]);
        }
    }
    table.print();
    let p = write_csv("fig09", &csv).expect("fig09 csv");
    println!("[fig09] wrote {}", p.display());
}
