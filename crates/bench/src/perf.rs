//! The tracked perf trajectory: wall-clock the completion-engine hot paths
//! and emit `bench-results/BENCH_policy.json` (full sizes; smoke runs
//! write `BENCH_policy_smoke.json` so CI never clobbers the committed
//! trajectory) so future PRs can diff the numbers instead of guessing
//! (PERF.md documents the workflow).
//!
//! Unlike the criterion benches (statistical, interactive), this emitter
//! is a one-shot measurement harness: each hot path runs a few times and
//! the minimum wall-clock is recorded — the stable "how fast can this
//! machine do it" number, cheap enough for CI. The smoke configuration
//! shrinks the matrix so the tier-1 gate can type-check *and execute* the
//! emitter in seconds; `--full` measures the real 10k×49 shapes the
//! acceptance numbers quote.
//!
//! The emitted document is flat (dotted keys) and self-checked: the
//! binary re-reads the file, parses it with [`Json::parse`] and verifies
//! [`REQUIRED_KEYS`] before exiting 0, so a malformed trajectory can
//! never land silently.

use crate::report::{write_json, Json};
use limeqo_core::complete::{AlsCompleter, AlsKernel, Completer};
use limeqo_core::explore::ExploreConfig;
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::policy::{LimeQoPolicy, Policy, PolicyCtx, RandomPolicy};
use limeqo_core::store::ObservationStore;
use limeqo_core::{
    Action, DurableConfig, DurableEngine, Engine, Event, FaultAt, FaultKind, FaultScript,
    FaultStorage, FsStorage, OpClass,
};
use limeqo_linalg::par::auto_threads;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;
use std::time::Instant;

/// Keys every `BENCH_policy.json` must contain (the ci.sh check and the
/// integration test both enforce this list).
pub const REQUIRED_KEYS: &[&str] = &[
    "schema",
    "smoke",
    "cores",
    "threads",
    "matrix.n",
    "matrix.k",
    "als.serial_s",
    "als.parallel_s",
    "als.speedup",
    "als.blocked_s",
    "als.block_speedup",
    "als.incremental_s",
    "store.demote_s",
    "store.gate_scan_s",
    "policy.rank_scan_s",
    "policy.sample_s",
    "policy.topk_s",
    "shard.select_s",
    "shard.merge_s",
    "shard.als_s",
    "shard.mem_bytes",
    "svc.journal_append_s",
    "svc.snapshot_s",
    "svc.recover_s",
    "svc.retry_backoff_s",
    "fault.injected_total",
    "scenario.name",
    "scenario.end_to_end_s",
];

/// Emitter configuration.
#[derive(Debug, Clone, Copy)]
pub struct PerfOpts {
    /// Shrink every shape so the whole run takes seconds (the tier-1 CI
    /// configuration). `false` measures the full 10k×49 shapes.
    pub smoke: bool,
    /// Worker threads for the parallel measurements (0 = auto).
    pub threads: usize,
}

impl PerfOpts {
    /// The tier-1 CI configuration.
    pub fn smoke() -> Self {
        PerfOpts { smoke: true, threads: 0 }
    }

    /// The full-size measurement (`perf --full`, slow tier).
    pub fn full() -> Self {
        PerfOpts { smoke: false, threads: 0 }
    }
}

/// Minimum wall-clock seconds of `f` over `reps` runs.
fn time_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A matured observation store at n×k: default column complete, ~30 % of
/// the remaining cells observed (mixed complete/censored) — the
/// `bench_store` shape.
fn matured_store(n: usize, k: usize, seed: u64) -> ObservationStore {
    matured_store_sharded(n, k, seed, 1)
}

/// [`matured_store`] over a sharded matrix layout. Cell content is
/// identical at every shard count (sharding is layout, not semantics), so
/// the `shard.*` measurements time the same data as the unsharded ones.
fn matured_store_sharded(n: usize, k: usize, seed: u64, shards: usize) -> ObservationStore {
    let mut rng = SeededRng::new(seed);
    let mut store = ObservationStore::new(WorkloadMatrix::new_sharded(n, k, shards));
    for row in 0..n {
        store.record_complete(row, 0, rng.uniform(1.0, 10.0));
        for col in 1..k {
            if rng.chance(0.3) {
                if rng.chance(0.5) {
                    store.record_complete(row, col, rng.uniform(0.1, 5.0));
                } else {
                    store.record_censored(row, col, rng.uniform(0.1, 2.0));
                }
            }
        }
    }
    store
}

/// A completer that returns a fixed fill — isolates the policy's Eq. 6
/// scan from the model fit in `policy.rank_scan_s`.
struct ConstCompleter(Mat);

impl Completer for ConstCompleter {
    fn name(&self) -> &'static str {
        "const"
    }
    fn complete(&mut self, _wm: &WorkloadMatrix) -> Mat {
        self.0.clone()
    }
}

/// Run every measurement and assemble the report.
pub fn run(opts: &PerfOpts) -> Json {
    let (n, k) = if opts.smoke { (1_000, 49) } else { (10_000, 49) };
    let iters = if opts.smoke { 5 } else { 50 };
    let reps = if opts.smoke { 1 } else { 3 };

    let store = matured_store(n, k, 0xBE9C);
    let wm = store.matrix();

    // ALS: the identical fit — naive serial, naive parallel, and the
    // cache-blocked kernels single-threaded (bit-identical output by
    // contract, so the whole delta against `als.serial_s` is memory
    // locality — a core-count-independent floor `perf --full` gates on).
    // Fresh completers per measurement so the RNG call counter cannot
    // skew a comparison. The three configurations are sampled
    // *interleaved*, one of each per round with per-configuration minima,
    // because the gated numbers are ratios of these: measured
    // back-to-back in sequence, slow machine-state drift (thermal,
    // noisy-neighbour) bills entirely to whichever configuration runs
    // last and turns a real speedup into a fake regression.
    let run_als = |kernel: AlsKernel, threads: usize| {
        let mut als = AlsCompleter::paper_default(1);
        als.iters = iters;
        als.threads = threads;
        als.kernel = kernel;
        let t = Instant::now();
        std::hint::black_box(als.complete(wm));
        t.elapsed().as_secs_f64()
    };
    let (mut als_serial, mut als_parallel, mut als_blocked) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        als_serial = als_serial.min(run_als(AlsKernel::Naive, 1));
        als_parallel = als_parallel.min(run_als(AlsKernel::Naive, opts.threads));
        als_blocked = als_blocked.min(run_als(AlsKernel::Blocked { tile: 0 }, 1));
    }

    // Incremental factor update: a warm-fitted completer re-solving a 1 %
    // dirty-row set against retained H. The warm fit runs outside the
    // timed region; every timed call leaves the completer warm again, so
    // reps measure the same steady-state update.
    let mut als_inc = AlsCompleter::warm_started(5, 1);
    als_inc.iters = iters;
    als_inc.threads = 1;
    als_inc.incremental = true;
    als_inc.incremental_full_every = 0;
    std::hint::black_box(als_inc.complete(wm));
    let dirty: Vec<usize> = (0..(n / 100).max(1)).collect();
    let als_incremental = time_min(reps, || {
        std::hint::black_box(als_inc.complete_dirty(wm, Some(&dirty)));
    });

    // Store demotion: the whole-matrix data-shift sweep.
    let demote = time_min(reps, || {
        let mut s = store.clone();
        s.demote_to_priors(0.5);
        std::hint::black_box(s.prior_count());
    });

    // Density-gate scan over the starved rows (post-shift state).
    let mut shifted = store.clone();
    shifted.demote_to_priors(0.5);
    let gate_scan = time_min(reps.max(3), || {
        let need = (0.12 * k as f64).ceil() as u32;
        let starved = (0..n).filter(|&row| shifted.fresh_complete_count(row) < need).count();
        std::hint::black_box(starved);
    });

    // Eq. 6 ranking scan with the model fit stubbed out. Policy and fill
    // are built once, outside the timed region, so the metric tracks the
    // scan plus the completer's single unavoidable n×k materialization —
    // not argument clones or Box/Vec construction.
    let mut policy = LimeQoPolicy::new(Box::new(ConstCompleter(Mat::filled(n, k, 1.0))), "limeqo");
    let rank_scan = time_min(reps.max(3), || {
        let ctx = PolicyCtx { wm, est_cost: None, store: Some(&store) };
        let mut rng = SeededRng::new(9);
        std::hint::black_box(policy.select(&ctx, 64, &mut rng));
    });

    // Uniform unobserved-cell sampling (the Random baseline / Algorithm
    // 1's line-9 fill-in): one full `select` through the Fenwick-indexed
    // sampler at the scale tier's batch. The old materialize+shuffle path
    // walked every unobserved cell here.
    let sample_batch = 4096usize;
    let sample = time_min(reps.max(3), || {
        let ctx = PolicyCtx { wm, est_cost: None, store: Some(&store) };
        let mut rng = SeededRng::new(10);
        std::hint::black_box(RandomPolicy.select(&ctx, sample_batch, &mut rng));
    });

    // Bounded top-m heap selection over a synthetic score vector of one
    // entry per row (the Eq. 6 ranking's shape), isolated from scoring.
    // `top_m_by` consumes its input, so one pre-cloned vector per rep is
    // prepared outside the timed region — the metric tracks the heap
    // selection, not an O(n) memcpy.
    let topk_scores: Vec<(f64, usize, usize, f64)> = {
        let mut rng = SeededRng::new(11);
        (0..n).map(|row| (rng.uniform(0.0, 4.0), row, rng.index(k), 1.0)).collect()
    };
    let topk_m = sample_batch.min(n);
    let topk_reps = reps.max(3);
    let mut topk_pools: Vec<Vec<(f64, usize, usize, f64)>> =
        (0..topk_reps).map(|_| topk_scores.clone()).collect();
    let topk = time_min(topk_reps, || {
        let items = topk_pools.pop().expect("one pre-cloned vector per rep");
        let picked = limeqo_core::select::top_m_by(items, topk_m, limeqo_core::select::score_desc);
        std::hint::black_box(picked);
    });

    // The sharded multi-tenant layer, at the 8-shard layout the scale-1m
    // tier uses: one full policy `select` over a sharded store (per-shard
    // Eq. 6 top-m + deterministic cross-shard merge), the k-way merge in
    // isolation, the per-shard blocked ALS fit, and the sparse matrix
    // footprint the memory-budget table in PERF.md quotes.
    let shard_count = 8usize;
    let sharded_store = matured_store_sharded(n, k, 0xBE9C, shard_count);
    let swm = sharded_store.matrix();
    let shard_mem = swm.mem_bytes();
    let shard_als = time_min(reps, || {
        let mut als = AlsCompleter::paper_default(1);
        als.iters = iters;
        als.threads = opts.threads;
        std::hint::black_box(als.complete(swm));
    });
    let mut shard_policy =
        LimeQoPolicy::new(Box::new(ConstCompleter(Mat::filled(n, k, 1.0))), "limeqo");
    let shard_select = time_min(reps.max(3), || {
        let ctx = PolicyCtx { wm: swm, est_cost: None, store: Some(&sharded_store) };
        let mut rng = SeededRng::new(9);
        std::hint::black_box(shard_policy.select(&ctx, 64, &mut rng));
    });
    // The cross-shard merge in isolation: one ranked top-m list per shard
    // (the Eq. 6 ranking's shape), merged under the subsystem's total
    // order. `merge_ranked` consumes its lists, so one pre-built set per
    // rep keeps the clone out of the timed region.
    let merge_reps = reps.max(3);
    // (score, row, col, weight) — the Eq. 6 ranked-candidate shape.
    type RankedList = Vec<(f64, usize, usize, f64)>;
    let merge_lists: Vec<RankedList> = swm
        .shard_ranges()
        .into_iter()
        .map(|(start, end)| {
            let mut rng = SeededRng::new(0x3D ^ start as u64);
            let scored = (start..end).map(|row| (rng.uniform(0.0, 4.0), row, rng.index(k), 1.0));
            limeqo_core::select::top_m_by(scored, topk_m, limeqo_core::select::score_desc)
        })
        .collect();
    let mut merge_pools: Vec<Vec<RankedList>> =
        (0..merge_reps).map(|_| merge_lists.clone()).collect();
    let shard_merge = time_min(merge_reps, || {
        let lists = merge_pools.pop().expect("one pre-built list set per rep");
        let merged =
            limeqo_core::select::merge_ranked(lists, topk_m, limeqo_core::select::score_desc);
        std::hint::black_box(merged);
    });

    // Service durability layer. Journal append is the per-event tax the
    // always-on daemon pays on the hot path, so it is measured as a
    // difference: the identical cheap-policy run with and without the
    // write-ahead journal, amortized over every journaled event. Snapshot
    // and recovery are measured on the matured n×k store — the state size
    // the acceptance numbers quote.
    let svc_dir = std::env::temp_dir().join(format!("limeqo-perf-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&svc_dir);
    let dcfg = DurableConfig { snapshot_every: 0, keep_snapshots: 2 };
    let (jn, jk, jticks) = if opts.smoke { (64, 8, 8) } else { (256, 16, 32) };
    let append_engine = || -> Engine<'static> {
        let defaults: Vec<f64> = (0..jn).map(|i| 5.0 + i as f64 * 0.01).collect();
        let store = ObservationStore::new(WorkloadMatrix::with_defaults(&defaults, jk));
        let cfg = ExploreConfig { batch: 16, seed: 7, ..Default::default() };
        Engine::offline(store, Box::new(RandomPolicy), None, &cfg)
    };
    // Synthetic probe outcomes: any deterministic latency works, the
    // journal cost per record is what is being measured.
    let probe_truth = |row: usize, col: usize| 0.5 + ((row * 31 + col * 17) % 100) as f64 * 0.05;
    let drive_plain = |engine: &mut Engine<'_>| -> usize {
        let mut events = 0;
        for _ in 0..jticks {
            let actions = engine.step(Event::Tick);
            events += 1;
            for a in actions {
                if let Action::Probe { row, col, timeout } = a {
                    let t = probe_truth(row, col);
                    let censored = t > timeout;
                    let value = if censored { timeout } else { t };
                    engine.step(Event::Observation { row, col, value, censored });
                    events += 1;
                }
            }
        }
        events
    };
    let svc_reps = reps.max(3);
    let mut journal_events = 0usize;
    let plain_s = time_min(svc_reps, || {
        let mut engine = append_engine();
        journal_events = drive_plain(&mut engine);
        std::hint::black_box(engine.cells_executed());
    });
    // Fresh state directories prepared outside the timed region, one per
    // rep, so `create`'s initial snapshot is not billed to the append.
    let mut durable_pool: Vec<DurableEngine<'static>> = (0..svc_reps)
        .map(|i| {
            DurableEngine::create(
                svc_dir.join(format!("j{i}")),
                append_engine(),
                "perf",
                dcfg.clone(),
            )
            .expect("create journal dir")
        })
        .collect();
    let durable_s = time_min(svc_reps, || {
        let mut de = durable_pool.pop().expect("one durable engine per rep");
        for _ in 0..jticks {
            let actions = de.step(Event::Tick).expect("journal tick");
            for a in actions {
                if let Action::Probe { row, col, timeout } = a {
                    let t = probe_truth(row, col);
                    let censored = t > timeout;
                    let value = if censored { timeout } else { t };
                    de.step(Event::Observation { row, col, value, censored }).expect("journal obs");
                }
            }
        }
        std::hint::black_box(de.engine().cells_executed());
    });
    let journal_append = ((durable_s - plain_s) / journal_events.max(1) as f64).max(1e-9);

    // Snapshot + recovery at the matured store's size. The recover seed is
    // an identically-configured engine over an empty same-shape store —
    // recovery replaces the state wholesale, as a restarted daemon would.
    let matured_engine = || -> Engine<'static> {
        let cfg = ExploreConfig { batch: 64, seed: 3, ..Default::default() };
        Engine::offline(store.clone(), Box::new(LimeQoPolicy::with_als(3)), None, &cfg)
    };
    let recover_seed = || -> Engine<'static> {
        let cfg = ExploreConfig { batch: 64, seed: 3, ..Default::default() };
        let empty = ObservationStore::new(WorkloadMatrix::new(n, k));
        Engine::offline(empty, Box::new(LimeQoPolicy::with_als(3)), None, &cfg)
    };
    let snap_dir = svc_dir.join("snap");
    let mut de_m = DurableEngine::create(&snap_dir, matured_engine(), "perf", dcfg.clone())
        .expect("create snapshot dir");
    let snapshot_s = time_min(svc_reps, || {
        de_m.snapshot().expect("snapshot matured engine");
    });
    drop(de_m);
    let recover_s = time_min(svc_reps, || {
        let (de, outstanding) =
            DurableEngine::recover(&snap_dir, recover_seed(), "perf", dcfg.clone())
                .expect("recover matured engine");
        std::hint::black_box((de.event_index(), outstanding.len()));
    });

    // Probe-retry bookkeeping: the same cheap-policy run but every probe's
    // first attempt fails (`Event::ProbeFailed`), waits out its backoff in
    // the retry queue and is re-issued. The per-cycle cost covers queue
    // insert, due-scan on each tick, and re-issue — the tax the engine
    // pays per transient probe failure.
    let mut retry_cycles = 1usize;
    let retry_run_s = time_min(svc_reps, || {
        let mut engine = append_engine();
        let mut seen: std::collections::HashSet<(usize, usize)> = Default::default();
        // Double the tick budget: each failed probe needs a later tick
        // (backoff_base = 1) before its retry becomes due.
        for _ in 0..jticks * 2 {
            let actions = engine.step(Event::Tick);
            for a in actions {
                if let Action::Probe { row, col, timeout } = a {
                    if seen.insert((row, col)) {
                        engine.step(Event::ProbeFailed { row, col });
                    } else {
                        let t = probe_truth(row, col);
                        let censored = t > timeout;
                        let value = if censored { timeout } else { t };
                        engine.step(Event::Observation { row, col, value, censored });
                    }
                }
            }
        }
        retry_cycles = engine.probe_retries().max(1);
        std::hint::black_box(engine.cells_executed());
    });
    let retry_backoff = (retry_run_s / retry_cycles as f64).max(1e-9);

    // Fault-injection accounting: a FaultStorage-wrapped durable run with
    // one scripted append failure. The probe's injected-op counter lands
    // in the trajectory so chaos coverage is visible (ci.sh greps it).
    let fault_dir = svc_dir.join("fault");
    let script = FaultScript::single(FaultAt::Class(OpClass::Append, 4), FaultKind::FailOp);
    let storage = FaultStorage::new(Box::new(FsStorage), script);
    let fault_probe = storage.probe();
    let mut de_f = DurableEngine::create_with(
        Box::new(storage),
        &fault_dir,
        append_engine(),
        "perf",
        dcfg.clone(),
    )
    .expect("create faulted dir: fault targets a later append");
    'fault: for _ in 0..jticks {
        let actions = match de_f.step(Event::Tick) {
            Ok(actions) => actions,
            Err(_) => break 'fault,
        };
        for a in actions {
            if let Action::Probe { row, col, timeout } = a {
                let t = probe_truth(row, col);
                let censored = t > timeout;
                let value = if censored { timeout } else { t };
                if de_f.step(Event::Observation { row, col, value, censored }).is_err() {
                    break 'fault;
                }
            }
        }
    }
    let fault_injected = fault_probe.injected_total();
    drop(de_f);
    let _ = std::fs::remove_dir_all(&svc_dir);

    // End-to-end scenario wall-clock. Smoke shrinks the 10k scenario so
    // the tier-1 gate stays fast; full runs it as registered.
    let mut spec = limeqo_sim::scenario::by_name("large-matrix-10k").expect("registered");
    if opts.smoke {
        if let limeqo_sim::scenario::ScenarioWorkload::Synthetic(s) = &mut spec.workload {
            s.n = 1_500;
        }
        spec.batch = 128;
    }
    let t = Instant::now();
    let outcome = crate::scenario_runner::run_scenario(&spec);
    let end_to_end = t.elapsed().as_secs_f64();

    Json::Obj(vec![
        ("schema".into(), Json::Str("limeqo-bench-policy-v1".into())),
        ("smoke".into(), Json::Bool(opts.smoke)),
        ("cores".into(), Json::Num(auto_threads() as f64)),
        ("threads".into(), Json::Num(limeqo_linalg::par::resolve_threads(opts.threads) as f64)),
        ("matrix.n".into(), Json::Num(n as f64)),
        ("matrix.k".into(), Json::Num(k as f64)),
        ("als.iters".into(), Json::Num(iters as f64)),
        ("als.serial_s".into(), Json::Num(als_serial)),
        ("als.parallel_s".into(), Json::Num(als_parallel)),
        ("als.speedup".into(), Json::Num(als_serial / als_parallel.max(1e-12))),
        ("als.blocked_s".into(), Json::Num(als_blocked)),
        ("als.block_speedup".into(), Json::Num(als_serial / als_blocked.max(1e-12))),
        ("als.incremental_s".into(), Json::Num(als_incremental)),
        ("store.demote_s".into(), Json::Num(demote)),
        ("store.gate_scan_s".into(), Json::Num(gate_scan)),
        ("policy.rank_scan_s".into(), Json::Num(rank_scan)),
        ("policy.sample_s".into(), Json::Num(sample)),
        ("policy.sample_batch".into(), Json::Num(sample_batch as f64)),
        ("policy.topk_s".into(), Json::Num(topk)),
        ("shard.count".into(), Json::Num(shard_count as f64)),
        ("shard.select_s".into(), Json::Num(shard_select)),
        ("shard.merge_s".into(), Json::Num(shard_merge)),
        ("shard.als_s".into(), Json::Num(shard_als)),
        ("shard.mem_bytes".into(), Json::Num(shard_mem as f64)),
        ("svc.journal_append_s".into(), Json::Num(journal_append)),
        ("svc.journal_events".into(), Json::Num(journal_events as f64)),
        ("svc.snapshot_s".into(), Json::Num(snapshot_s)),
        ("svc.recover_s".into(), Json::Num(recover_s)),
        ("svc.retry_backoff_s".into(), Json::Num(retry_backoff)),
        ("fault.injected_total".into(), Json::Num(fault_injected as f64)),
        ("scenario.name".into(), Json::Str(spec.name.clone())),
        ("scenario.n".into(), Json::Num(outcome.n as f64)),
        ("scenario.end_to_end_s".into(), Json::Num(end_to_end)),
        ("scenario.final_latency".into(), Json::Num(outcome.final_latency)),
    ])
}

/// Check a parsed `BENCH_policy.json` for the required keys (numbers must
/// be finite, strings non-empty). Returns every violation found.
pub fn validate(doc: &Json) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    for &key in REQUIRED_KEYS {
        match doc.get(key) {
            None => errors.push(format!("missing required key {key:?}")),
            Some(Json::Num(v)) if !v.is_finite() => errors.push(format!("{key:?} is not finite")),
            Some(Json::Str(s)) if s.is_empty() => errors.push(format!("{key:?} is empty")),
            Some(_) => {}
        }
    }
    // The headline numbers must be positive durations.
    for key in [
        "als.serial_s",
        "als.parallel_s",
        "als.blocked_s",
        "als.incremental_s",
        "scenario.end_to_end_s",
        "shard.select_s",
        "shard.merge_s",
        "shard.als_s",
        "svc.journal_append_s",
        "svc.snapshot_s",
        "svc.recover_s",
        "svc.retry_backoff_s",
    ] {
        if let Some(v) = doc.get(key).and_then(Json::as_num) {
            if v <= 0.0 {
                errors.push(format!("{key:?} must be a positive duration, got {v}"));
            }
        }
    }
    // The sharded matrix footprint is a real byte count, never a stub.
    if let Some(v) = doc.get("shard.mem_bytes").and_then(Json::as_num) {
        if v <= 0.0 {
            errors.push(format!("\"shard.mem_bytes\" must be a positive byte count, got {v}"));
        }
    }
    // Chaos coverage is real: the scripted storage fault must have fired.
    if let Some(v) = doc.get("fault.injected_total").and_then(Json::as_num) {
        if v < 1.0 {
            errors.push(format!("\"fault.injected_total\" must be at least 1, got {v}"));
        }
    }
    // The always-on service journals every input event on the hot path;
    // the write-ahead append must stay negligible next to one policy
    // selection or the durability layer is taxing exploration.
    let append = doc.get("svc.journal_append_s").and_then(Json::as_num);
    let sample = doc.get("policy.sample_s").and_then(Json::as_num);
    if let (Some(append), Some(sample)) = (append, sample) {
        if append >= 0.05 * sample {
            errors.push(format!(
                "\"svc.journal_append_s\" ({append:.3e} s) must stay under 5% of \
                 \"policy.sample_s\" ({sample:.3e} s)"
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Emit the report — `bench-results/BENCH_policy.json` for full runs,
/// `BENCH_policy_smoke.json` for smoke (so the committed full-size
/// trajectory is never overwritten by a CI smoke pass) — then re-read,
/// re-parse and validate it. Returns the written path.
pub fn emit(opts: &PerfOpts) -> Result<std::path::PathBuf, String> {
    let doc = run(opts);
    let name = if opts.smoke { "BENCH_policy_smoke" } else { "BENCH_policy" };
    let path = write_json(name, &doc).map_err(|e| e.to_string())?;
    let body = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    let parsed = Json::parse(&body)?;
    validate(&parsed).map_err(|errs| errs.join("; "))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_flags_missing_and_bad_keys() {
        let empty = Json::Obj(vec![]);
        let errs = validate(&empty).unwrap_err();
        assert!(errs.len() >= REQUIRED_KEYS.len());
        let bad = Json::Obj(vec![
            ("als.serial_s".into(), Json::Num(-1.0)),
            ("scenario.name".into(), Json::Str(String::new())),
        ]);
        let errs = validate(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("positive duration")));
        assert!(errs.iter().any(|e| e.contains("is empty")));
    }
}
