//! The always-on LimeQO optimizer service.
//!
//! `limeqo-svc` hosts the tick-driven [`limeqo_core::Engine`] behind a
//! newline-delimited JSON protocol (one request object per line on stdin,
//! one response object per line on stdout) with durable state through
//! [`limeqo_core::persist`]: every mutating request is journaled before it
//! is applied, snapshots are taken periodically, and restarting the daemon
//! on an existing state directory resumes the exploration bit-identically
//! from the kill point — including re-executing probes that were in flight
//! when the process died.
//!
//! The service explores a *simulated* workload: a deterministic synthetic
//! low-rank latency oracle derived from the `init` request's seed (the
//! repo is DBMS-agnostic; a production deployment would execute probes
//! against a real database instead). The oracle parameters are persisted
//! in `svc-config.json` inside the state directory, so recovery rebuilds
//! the exact same environment.
//!
//! # Protocol
//!
//! | request | response |
//! |---|---|
//! | `{"op":"init","n":N,"k":K,"seed":S,"batch":B[,"shards":T]}` | `{"ok":true,"op":"init"}` |
//! | `{"op":"tick"}` | `{"ok":true,"op":"tick","probes":P,"time_spent":T}` |
//! | `{"op":"hint","row":R}` | `{"ok":true,"op":"hint","col":C,"latency":L}` |
//! | `{"op":"status"}` | `{"ok":true,...,"event_index":E,"cells":C}` |
//! | `{"op":"snapshot"}` | `{"ok":true,"op":"snapshot"}` |
//! | `{"op":"trace"}` | `{"ok":true,"op":"trace","entries":[[r,c,"bits",0/1],…]}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"op":"shutdown"}` and the loop ends |
//!
//! Errors come back as `{"ok":false,"error":"…"}`; the daemon keeps
//! serving. Requests are bounded at [`MAX_LINE_BYTES`] — an oversized
//! line is answered with an error and never parsed, so a runaway client
//! cannot balloon the daemon's memory. `trace` reports each entry's
//! charged seconds as the hex
//! [`f64::to_bits`] image, so two traces are equal if and only if the
//! exploration histories are bit-identical — that is what the CI crash
//! smoke diffs.
//!
//! # Degraded mode
//!
//! A persist failure (journal append, snapshot write) does not kill the
//! daemon: it drops to **degraded** mode — the in-memory engine keeps
//! advancing and `hint`/`status`/`tick` keep serving, but nothing is
//! journaled. `status` reports `"degraded":true` plus the last persist
//! error; durability re-arms automatically at the next snapshot-cadence
//! boundary (or on an explicit `snapshot` request) by writing a fresh
//! full snapshot of the current state. Because faults live entirely in
//! the persistence layer, a degraded run's exploration trace is
//! bit-identical to a fault-free one.

#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};

use limeqo_bench::Json;
use limeqo_core::explore::ExploreConfig;
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::persist::{DurableConfig, DurableEngine, PersistError};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_core::store::ObservationStore;
use limeqo_core::{Action, Engine, Event, FsStorage, Storage};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

/// Upper bound on one request line. Protocol requests are tiny (tens of
/// bytes); anything past this is a broken or hostile client, and the
/// daemon answers with an error instead of parsing it.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// `Some(error reply)` when `line` exceeds [`MAX_LINE_BYTES`].
fn oversized_reply(line: &str) -> Option<String> {
    (line.len() > MAX_LINE_BYTES).then(|| {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(false)),
            (
                "error".into(),
                Json::Str(format!(
                    "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
                    line.len()
                )),
            ),
        ])
        .render()
    })
}

/// The persisted service environment: shape and seeds of the simulated
/// workload plus the exploration batch size. Everything the engine's
/// static configuration derives from; stored as `svc-config.json` in the
/// state directory and required to match on recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Queries (rows) in the simulated workload.
    pub n: usize,
    /// Hints (columns) per query.
    pub k: usize,
    /// Seed for the synthetic oracle, the policy's completer, and the
    /// engine RNG.
    pub seed: u64,
    /// Probes issued per tick.
    pub batch: usize,
    /// Row-range shards of the workload matrix (1 = the unsharded engine;
    /// N = the multi-tenant tier). A pure scale-out knob: the exploration
    /// trace is bit-identical at every value.
    pub shards: usize,
}

impl ServiceConfig {
    /// Serialize for `svc-config.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), Json::Num(self.n as f64)),
            ("k".into(), Json::Num(self.k as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("batch".into(), Json::Num(self.batch as f64)),
            ("shards".into(), Json::Num(self.shards as f64)),
        ])
    }

    /// Parse from `svc-config.json` contents.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_num)
                .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
                .ok_or_else(|| format!("svc-config: missing or bad field {name:?}"))
        };
        // Pre-sharding state directories have no "shards" field; they are
        // single-shard by construction.
        let shards = match v.get("shards") {
            None => 1,
            Some(_) => field("shards")? as usize,
        };
        Ok(ServiceConfig {
            n: field("n")? as usize,
            k: field("k")? as usize,
            seed: field("seed")? as u64,
            batch: field("batch")? as usize,
            shards,
        })
    }

    /// The configuration fingerprint stored in every snapshot; recovery
    /// with a different configuration fails instead of silently diverging.
    pub fn tag(&self) -> String {
        format!("limeqo-svc offline {self:?}")
    }
}

/// Deterministic synthetic latency oracle: a rank-3 product with the
/// default column inflated so exploration has headroom to win (the same
/// construction the core test suites use).
pub fn synthetic_truth(cfg: &ServiceConfig) -> Result<Mat, PersistError> {
    let mut rng = SeededRng::new(cfg.seed ^ 0x51C0_FFEE);
    let q = rng.uniform_mat(cfg.n, 3, 0.5, 2.0);
    let h = rng.uniform_mat(cfg.k, 3, 0.2, 1.5);
    let mut lat = q
        .matmul_t(&h)
        .map_err(|e| PersistError::Corrupt(format!("synthetic oracle construction: {e}")))?;
    for i in 0..cfg.n {
        lat[(i, 0)] = lat[(i, 0)] * 2.0 + 0.5;
    }
    Ok(lat)
}

fn build_engine(cfg: &ServiceConfig, truth: &Mat) -> Engine<'static> {
    let defaults: Vec<f64> = (0..cfg.n).map(|i| truth[(i, WorkloadMatrix::DEFAULT_HINT)]).collect();
    let store =
        ObservationStore::new(WorkloadMatrix::with_defaults_sharded(&defaults, cfg.k, cfg.shards));
    let ecfg = ExploreConfig {
        batch: cfg.batch,
        seed: cfg.seed,
        shards: cfg.shards,
        ..Default::default()
    };
    Engine::offline(store, Box::new(LimeQoPolicy::with_als(cfg.seed)), None, &ecfg)
}

fn config_path(dir: &Path) -> PathBuf {
    dir.join("svc-config.json")
}

/// One response from [`Service::handle`].
pub enum Reply {
    /// A response line; keep serving.
    Line(String),
    /// A response line after which the daemon should flush and exit.
    Shutdown(String),
}

impl Reply {
    /// The response line regardless of variant.
    pub fn line(&self) -> &str {
        match self {
            Reply::Line(s) | Reply::Shutdown(s) => s,
        }
    }
}

/// The daemon state: the simulated oracle plus the durable engine, and an
/// optional crash trigger for the CI kill-and-recover smoke.
pub struct Service {
    cfg: ServiceConfig,
    truth: Mat,
    de: DurableEngine<'static>,
    /// Abort the process (SIGKILL-equivalent: no flush, no unwind) as soon
    /// as this many events have been journaled. Used by the crash smoke to
    /// die at a deterministic point *between* journal appends — typically
    /// mid-tick, with probes in flight.
    crash_at: Option<u64>,
}

impl Service {
    /// Initialize a fresh state directory from an `init` request.
    pub fn init(
        dir: &Path,
        cfg: ServiceConfig,
        crash_at: Option<u64>,
    ) -> Result<Self, PersistError> {
        Self::init_with(Box::new(FsStorage), dir, cfg, crash_at)
    }

    /// [`Service::init`] against an explicit [`Storage`] implementation
    /// (the `--fault-at` dev flag injects a
    /// [`limeqo_core::FaultStorage`] here). A create-time fault is a
    /// clean typed error — degraded mode only exists for a service that
    /// was already serving.
    pub fn init_with(
        storage: Box<dyn Storage>,
        dir: &Path,
        cfg: ServiceConfig,
        crash_at: Option<u64>,
    ) -> Result<Self, PersistError> {
        if cfg.n == 0 || cfg.k == 0 || cfg.batch == 0 || cfg.shards == 0 {
            return Err(PersistError::Corrupt(
                "init: n, k, batch and shards must be positive".into(),
            ));
        }
        let truth = synthetic_truth(&cfg)?;
        let engine = build_engine(&cfg, &truth);
        let de =
            DurableEngine::create_with(storage, dir, engine, &cfg.tag(), DurableConfig::default())?;
        // The environment descriptor bypasses the Storage abstraction on
        // purpose: it is written once at init, and faulting it would only
        // retest the error path above, not the serving daemon.
        fs::create_dir_all(dir)?;
        fs::write(config_path(dir), cfg.to_json().render())?;
        Ok(Service { cfg, truth, de, crash_at })
    }

    /// Resume an existing state directory: rebuild the simulated
    /// environment from `svc-config.json`, recover the engine from its
    /// newest valid snapshot + journal tail, and re-execute any probes
    /// that were in flight at the kill point.
    pub fn open(dir: &Path, crash_at: Option<u64>) -> Result<Self, PersistError> {
        Self::open_with(Box::new(FsStorage), dir, crash_at)
    }

    /// [`Service::open`] against an explicit [`Storage`] implementation.
    pub fn open_with(
        storage: Box<dyn Storage>,
        dir: &Path,
        crash_at: Option<u64>,
    ) -> Result<Self, PersistError> {
        let text = fs::read_to_string(config_path(dir))?;
        let cfg = Json::parse(&text)
            .and_then(|v| ServiceConfig::from_json(&v))
            .map_err(PersistError::Corrupt)?;
        let truth = synthetic_truth(&cfg)?;
        let engine = build_engine(&cfg, &truth);
        let (de, outstanding) = DurableEngine::recover_with(
            storage,
            dir,
            engine,
            &cfg.tag(),
            DurableConfig::default(),
        )?;
        let mut svc = Service { cfg, truth, de, crash_at };
        // At-least-once re-execution: the journal recorded the tick but
        // died before all its observations landed. The oracle is
        // deterministic and observations idempotent, so replying again is
        // safe and resumes the interrupted round exactly.
        for p in outstanding {
            svc.observe(p.row, p.col, p.timeout);
        }
        Ok(svc)
    }

    /// Whether `dir` holds an initialized service state.
    pub fn exists(dir: &Path) -> bool {
        config_path(dir).exists()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The wrapped engine (read-only).
    pub fn engine(&self) -> &Engine<'static> {
        self.de.engine()
    }

    /// Whether the daemon is serving degraded (a persist failure left the
    /// journal poisoned; memory advances, nothing is journaled).
    pub fn degraded(&self) -> bool {
        self.de.poisoned()
    }

    fn durable_step(&mut self, event: Event) -> Vec<Action> {
        let actions = if self.de.poisoned() {
            self.de.step_degraded(event).0
        } else {
            match self.de.step(event.clone()) {
                Ok(a) => a,
                // `step()` guarantees the event was NOT applied on Err,
                // so re-submitting the same event degraded applies it
                // exactly once — a client sees one uninterrupted stream.
                Err(_) => self.de.step_degraded(event).0,
            }
        };
        if self.crash_at.is_some_and(|n| self.de.event_index() >= n) {
            // Die like a SIGKILL: no journal flush beyond what step()
            // already wrote, no destructors, no snapshot.
            std::process::abort();
        }
        actions
    }

    fn observe(&mut self, row: usize, col: usize, timeout: f64) {
        let truth = self.truth[(row, col)];
        let censored = truth > timeout;
        let value = if censored { timeout } else { truth };
        self.durable_step(Event::Observation { row, col, value, censored });
    }

    /// Run one exploration round: journal the tick, execute every probe
    /// the policy issued against the simulated oracle, journal each
    /// observation. Returns the number of probes executed. A persist
    /// failure mid-round degrades the daemon instead of erroring — the
    /// round still completes in memory.
    pub fn tick(&mut self) -> usize {
        let actions = self.durable_step(Event::Tick);
        let probes: Vec<(usize, usize, f64)> = actions
            .iter()
            .filter_map(|a| match *a {
                Action::Probe { row, col, timeout } => Some((row, col, timeout)),
                _ => None,
            })
            .collect();
        for &(row, col, timeout) in &probes {
            self.observe(row, col, timeout);
        }
        probes.len()
    }

    /// Handle one protocol line. Malformed or oversized requests produce
    /// an error response, not a crash — a daemon must outlive its clients.
    pub fn handle(&mut self, line: &str) -> Reply {
        if let Some(reply) = oversized_reply(line) {
            return Reply::Line(reply);
        }
        match self.dispatch(line) {
            Ok(reply) => reply,
            Err(msg) => Reply::Line(
                Json::Obj(vec![("ok".into(), Json::Bool(false)), ("error".into(), Json::Str(msg))])
                    .render(),
            ),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<Reply, String> {
        let req = Json::parse(line)?;
        let op = match req.get("op") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("missing op field".into()),
        };
        let ok = |mut fields: Vec<(String, Json)>| {
            let mut all =
                vec![("ok".into(), Json::Bool(true)), ("op".into(), Json::Str(op.clone()))];
            all.append(&mut fields);
            Reply::Line(Json::Obj(all).render())
        };
        match op.as_str() {
            "init" => Err("already initialized (init is only valid on a fresh directory)".into()),
            "tick" => {
                let probes = self.tick();
                Ok(ok(vec![
                    ("probes".into(), Json::Num(probes as f64)),
                    ("time_spent".into(), Json::Num(self.engine().time_spent())),
                ]))
            }
            "hint" => {
                let row = req
                    .get("row")
                    .and_then(Json::as_num)
                    .filter(|r| r.is_finite() && *r >= 0.0 && r.fract() == 0.0)
                    .ok_or("hint: missing or bad row")? as usize;
                if row >= self.cfg.n {
                    return Err(format!("hint: row {row} out of range"));
                }
                let actions = self.durable_step(Event::HintRequest { row });
                match actions.first() {
                    Some(&Action::Recommend { col, latency, .. }) => Ok(ok(vec![
                        ("col".into(), Json::Num(col as f64)),
                        ("latency".into(), Json::Num(latency)),
                    ])),
                    _ => Err(format!("hint: row {row} has no verified plan yet")),
                }
            }
            "status" => {
                let mut fields = vec![
                    ("event_index".into(), Json::Num(self.de.event_index() as f64)),
                    ("time_spent".into(), Json::Num(self.engine().time_spent())),
                    ("cells".into(), Json::Num(self.engine().cells_executed() as f64)),
                    ("trace_len".into(), Json::Num(self.engine().trace().len() as f64)),
                    ("degraded".into(), Json::Bool(self.de.poisoned())),
                ];
                if let Some(err) = self.de.last_persist_error() {
                    fields.push(("persist_error".into(), Json::Str(err.to_string())));
                }
                Ok(ok(fields))
            }
            "snapshot" => {
                // An explicit snapshot doubles as a manual re-arm: a
                // degraded daemon writes a fresh full snapshot of its
                // current in-memory state and restores durability.
                if self.de.poisoned() {
                    self.de.rearm().map_err(|e| e.to_string())?;
                } else {
                    self.de.snapshot().map_err(|e| e.to_string())?;
                }
                Ok(ok(vec![]))
            }
            "trace" => {
                let entries: Vec<Json> = self
                    .engine()
                    .trace()
                    .iter()
                    .map(|t| {
                        Json::Arr(vec![
                            Json::Num(t.row as f64),
                            Json::Num(t.col as f64),
                            Json::Str(format!("{:016x}", t.charged.to_bits())),
                            Json::Num(t.censored as u64 as f64),
                        ])
                    })
                    .collect();
                Ok(ok(vec![("entries".into(), Json::Arr(entries))]))
            }
            "shutdown" => {
                let mut all =
                    vec![("ok".into(), Json::Bool(true)), ("op".into(), Json::Str(op.clone()))];
                if self.de.poisoned() {
                    // Nothing to flush: the journal is poisoned and the
                    // state that matters was either re-armed already or
                    // is intentionally memory-only. Exit cleanly anyway —
                    // degraded is a serving state, not a failure.
                    all.push(("degraded".into(), Json::Bool(true)));
                } else {
                    self.de.shutdown().map_err(|e| e.to_string())?;
                }
                all.push(("event_index".into(), Json::Num(self.de.event_index() as f64)));
                Ok(Reply::Shutdown(Json::Obj(all).render()))
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Handle the `init` request on a fresh directory (the one op
/// [`Service::handle`] rejects, since it constructs the service).
pub fn handle_init(
    dir: &Path,
    line: &str,
    crash_at: Option<u64>,
) -> Result<(Service, String), String> {
    handle_init_with(Box::new(FsStorage), dir, line, crash_at)
}

/// [`handle_init`] against an explicit [`Storage`] implementation.
pub fn handle_init_with(
    storage: Box<dyn Storage>,
    dir: &Path,
    line: &str,
    crash_at: Option<u64>,
) -> Result<(Service, String), String> {
    if line.len() > MAX_LINE_BYTES {
        return Err(format!(
            "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte limit",
            line.len()
        ));
    }
    let req = Json::parse(line)?;
    match req.get("op") {
        Some(Json::Str(s)) if s == "init" => {}
        _ => return Err("first request on a fresh directory must be init".into()),
    }
    let field = |name: &str, default: Option<f64>| match req
        .get(name)
        .map(|v| v.as_num().filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0))
    {
        Some(Some(v)) => Ok(v),
        Some(None) => Err(format!("init: bad field {name:?}")),
        None => default.ok_or(format!("init: missing field {name:?}")),
    };
    let cfg = ServiceConfig {
        n: field("n", None)? as usize,
        k: field("k", None)? as usize,
        seed: field("seed", Some(0.0))? as u64,
        batch: field("batch", Some(8.0))? as usize,
        shards: field("shards", Some(1.0))? as usize,
    };
    let svc = Service::init_with(storage, dir, cfg, crash_at).map_err(|e| e.to_string())?;
    let reply =
        Json::Obj(vec![("ok".into(), Json::Bool(true)), ("op".into(), Json::Str("init".into()))])
            .render();
    Ok((svc, reply))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("limeqo-svc-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn trace_of(svc: &mut Service) -> String {
        svc.handle(r#"{"op":"trace"}"#).line().to_string()
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = ServiceConfig { n: 40, k: 9, seed: 7, batch: 4, shards: 3 };
        let back =
            ServiceConfig::from_json(&Json::parse(&cfg.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, cfg);
        // Pre-sharding config files (no "shards" field) stay readable as
        // single-shard deployments.
        let legacy = Json::parse(r#"{"n":40,"k":9,"seed":7,"batch":4}"#).unwrap();
        assert_eq!(ServiceConfig::from_json(&legacy).unwrap().shards, 1);
    }

    #[test]
    fn sharded_service_replays_the_unsharded_trace() {
        // The shards knob is pure scale-out: the multi-tenant daemon's
        // exploration trace is bit-identical to the unsharded one, and
        // crash recovery preserves the sharded layout.
        let dir_a = test_dir("shard-a");
        let dir_b = test_dir("shard-b");
        let (mut plain, _) =
            handle_init(&dir_a, r#"{"op":"init","n":24,"k":8,"seed":5,"batch":4}"#, None).unwrap();
        let init_sharded = r#"{"op":"init","n":24,"k":8,"seed":5,"batch":4,"shards":8}"#;
        let (mut sharded, _) = handle_init(&dir_b, init_sharded, None).unwrap();
        assert_eq!(sharded.config().shards, 8);
        for _ in 0..4 {
            plain.handle(r#"{"op":"tick"}"#);
            sharded.handle(r#"{"op":"tick"}"#);
        }
        assert_eq!(trace_of(&mut sharded), trace_of(&mut plain));
        // Kill the sharded daemon without shutdown and resume: the shard
        // count survives via svc-config.json and the trace still matches.
        drop(sharded);
        let mut sharded = Service::open(&dir_b, None).unwrap();
        assert_eq!(sharded.config().shards, 8);
        plain.handle(r#"{"op":"tick"}"#);
        sharded.handle(r#"{"op":"tick"}"#);
        assert_eq!(trace_of(&mut sharded), trace_of(&mut plain));
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn zero_shards_is_rejected_at_init() {
        let dir = test_dir("shard-zero");
        let err = handle_init(&dir, r#"{"op":"init","n":8,"k":4,"shards":0}"#, None)
            .err()
            .expect("zero shards must fail");
        assert!(err.contains("positive"), "{err}");
        assert!(!Service::exists(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    fn fault_storage(script: limeqo_core::FaultScript) -> Box<dyn Storage> {
        Box::new(limeqo_core::FaultStorage::new(Box::new(FsStorage), script))
    }

    #[test]
    fn persist_fault_degrades_but_keeps_serving() {
        use limeqo_core::{FaultAt, FaultKind, FaultScript, OpClass};
        let dir_a = test_dir("degrade-ref");
        let dir_b = test_dir("degrade-faulty");
        let init = r#"{"op":"init","n":24,"k":8,"seed":5,"batch":4}"#;

        // Fault-free reference.
        let (mut reference, _) = handle_init(&dir_a, init, None).unwrap();
        for _ in 0..6 {
            reference.handle(r#"{"op":"tick"}"#);
        }
        let want = trace_of(&mut reference);

        // Fail a journal append mid-round: append #0 is the initial
        // snapshot body and #1 the first WAL header, so #10 lands inside
        // the second tick round (1 tick + 4 observation records each).
        let script = FaultScript::single(FaultAt::Class(OpClass::Append, 10), FaultKind::FailOp);
        let (mut svc, _) = handle_init_with(fault_storage(script), &dir_b, init, None).unwrap();
        for _ in 0..6 {
            let r = svc.handle(r#"{"op":"tick"}"#);
            assert!(r.line().contains("\"ok\":true"), "{}", r.line());
        }
        assert!(svc.degraded());
        let status = svc.handle(r#"{"op":"status"}"#).line().to_string();
        assert!(status.contains("\"degraded\":true"), "{status}");
        assert!(status.contains("persist_error"), "{status}");
        // Hints still serve from memory.
        let hint = svc.handle(r#"{"op":"hint","row":0}"#);
        assert!(hint.line().contains("\"col\":"), "{}", hint.line());
        // The payoff: faults live entirely in the persistence layer, so
        // the degraded daemon's exploration trace is bit-identical to the
        // fault-free run.
        assert_eq!(trace_of(&mut svc), want);
        // Degraded shutdown still exits the loop cleanly.
        match svc.handle(r#"{"op":"shutdown"}"#) {
            Reply::Shutdown(line) => assert!(line.contains("\"degraded\":true"), "{line}"),
            Reply::Line(line) => panic!("shutdown must end the loop: {line}"),
        }
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn explicit_snapshot_rearms_and_restart_resumes_the_trace() {
        use limeqo_core::{FaultAt, FaultKind, FaultScript, OpClass};
        let dir_a = test_dir("rearm-ref");
        let dir_b = test_dir("rearm-faulty");
        let init = r#"{"op":"init","n":24,"k":8,"seed":5,"batch":4}"#;

        let (mut reference, _) = handle_init(&dir_a, init, None).unwrap();
        for _ in 0..6 {
            reference.handle(r#"{"op":"tick"}"#);
        }
        let want = trace_of(&mut reference);

        let script = FaultScript::single(FaultAt::Class(OpClass::Append, 10), FaultKind::Enospc);
        let (mut svc, _) = handle_init_with(fault_storage(script), &dir_b, init, None).unwrap();
        for _ in 0..3 {
            svc.handle(r#"{"op":"tick"}"#);
        }
        assert!(svc.degraded());
        // Manual re-arm: snapshot the in-memory state, restore durability.
        let r = svc.handle(r#"{"op":"snapshot"}"#);
        assert!(r.line().contains("\"ok\":true"), "{}", r.line());
        assert!(!svc.degraded());
        let status = svc.handle(r#"{"op":"status"}"#).line().to_string();
        assert!(status.contains("\"degraded\":false"), "{status}");
        // Kill without shutdown; a plain restart recovers from the re-arm
        // snapshot and finishes the run bit-identically.
        drop(svc);
        let mut svc = Service::open(&dir_b, None).unwrap();
        for _ in 0..3 {
            svc.handle(r#"{"op":"tick"}"#);
        }
        assert_eq!(trace_of(&mut svc), want);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn create_time_fault_is_a_clean_error() {
        use limeqo_core::{FaultAt, FaultKind, FaultScript};
        let dir = test_dir("create-fault");
        // Op #0 globally is the snapshot-0 create: init never comes up.
        let script = FaultScript::single(FaultAt::Op(0), FaultKind::FailOp);
        let err = handle_init_with(
            fault_storage(script),
            &dir,
            r#"{"op":"init","n":8,"k":4,"seed":1,"batch":2}"#,
            None,
        )
        .err()
        .expect("create-time fault must fail init");
        assert!(err.contains("injected"), "{err}");
        assert!(!Service::exists(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn init_tick_hint_status_shutdown_flow() {
        let dir = test_dir("flow");
        let (mut svc, reply) =
            handle_init(&dir, r#"{"op":"init","n":24,"k":8,"seed":5,"batch":4}"#, None).unwrap();
        assert!(reply.contains("\"ok\":true"));
        for _ in 0..4 {
            let r = svc.handle(r#"{"op":"tick"}"#);
            assert!(r.line().contains("\"ok\":true"), "{}", r.line());
        }
        let hint = svc.handle(r#"{"op":"hint","row":0}"#);
        assert!(hint.line().contains("\"col\":"), "{}", hint.line());
        let status = svc.handle(r#"{"op":"status"}"#);
        assert!(status.line().contains("\"event_index\":"), "{}", status.line());
        match svc.handle(r#"{"op":"shutdown"}"#) {
            Reply::Shutdown(line) => assert!(line.contains("\"ok\":true")),
            Reply::Line(line) => panic!("shutdown must end the loop: {line}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restart_resumes_the_exact_trace() {
        let dir_a = test_dir("resume-a");
        let dir_b = test_dir("resume-b");
        let init = r#"{"op":"init","n":24,"k":8,"seed":5,"batch":4}"#;

        // Reference: 6 uninterrupted ticks.
        let (mut reference, _) = handle_init(&dir_a, init, None).unwrap();
        for _ in 0..6 {
            reference.handle(r#"{"op":"tick"}"#);
        }
        let want = trace_of(&mut reference);

        // Killed run: 3 ticks, drop without shutdown, reopen, 3 more.
        let (mut svc, _) = handle_init(&dir_b, init, None).unwrap();
        for _ in 0..3 {
            svc.handle(r#"{"op":"tick"}"#);
        }
        drop(svc);
        let mut svc = Service::open(&dir_b, None).unwrap();
        for _ in 0..3 {
            svc.handle(r#"{"op":"tick"}"#);
        }
        assert_eq!(trace_of(&mut svc), want);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn malformed_requests_do_not_kill_the_daemon() {
        let dir = test_dir("malformed");
        let (mut svc, _) =
            handle_init(&dir, r#"{"op":"init","n":10,"k":5,"seed":1,"batch":2}"#, None).unwrap();
        for bad in [
            "",
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"hint"}"#,
            r#"{"op":"hint","row":99}"#,
            r#"{"op":"init","n":1,"k":1}"#,
        ] {
            let r = svc.handle(bad);
            assert!(r.line().contains("\"ok\":false"), "{bad:?} -> {}", r.line());
        }
        // Still alive.
        assert!(svc.handle(r#"{"op":"tick"}"#).line().contains("\"ok\":true"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_line_is_rejected_without_parsing() {
        let dir = test_dir("oversized");
        let (mut svc, _) =
            handle_init(&dir, r#"{"op":"init","n":10,"k":5,"seed":1,"batch":2}"#, None).unwrap();
        // A syntactically valid request bloated past the cap: the length
        // check must fire before the parser ever sees it.
        let huge = format!(r#"{{"op":"tick","pad":"{}"}}"#, "x".repeat(MAX_LINE_BYTES));
        let r = svc.handle(&huge);
        assert!(r.line().contains("\"ok\":false"), "{}", r.line());
        assert!(r.line().contains("exceeds"), "{}", r.line());
        // Still alive, and the oversized request left no journal trace.
        assert!(svc.handle(r#"{"op":"tick"}"#).line().contains("\"ok\":true"));
        let _ = fs::remove_dir_all(&dir);

        // The same cap guards the pre-init path.
        let dir2 = test_dir("oversized-init");
        let err = handle_init(&dir2, &huge, None).err().expect("oversized init must fail");
        assert!(err.contains("exceeds"), "{err}");
        let _ = fs::remove_dir_all(&dir2);
    }

    #[test]
    fn fresh_directory_rejects_everything_until_init() {
        let dir = test_dir("tick-before-init");
        for early in [r#"{"op":"tick"}"#, r#"{"op":"status"}"#, r#"{"op":"shutdown"}"#] {
            let err = handle_init(&dir, early, None).err().expect("pre-init op must fail");
            assert!(err.contains("must be init"), "{early} -> {err}");
        }
        // The rejections above must not have initialized or corrupted the
        // directory: a proper init still succeeds afterwards.
        assert!(!Service::exists(&dir));
        let (mut svc, reply) =
            handle_init(&dir, r#"{"op":"init","n":10,"k":5,"seed":1,"batch":2}"#, None).unwrap();
        assert!(reply.contains("\"ok\":true"));
        assert!(svc.handle(r#"{"op":"tick"}"#).line().contains("\"ok\":true"));
        let _ = fs::remove_dir_all(&dir);
    }
}
