//! `limeqo-svc` — the always-on optimizer daemon.
//!
//! ```text
//! limeqo-svc --dir STATE_DIR [--script FILE] [--crash-after-events N]
//! ```
//!
//! Requests are newline-delimited JSON, one object per line, read from
//! stdin (or `--script FILE`); responses go to stdout, one line per
//! request (see the `limeqo_svc` crate docs for the protocol). On an
//! existing state directory the daemon recovers from the journal before
//! serving; on a fresh one the first request must be `init`.
//!
//! `--crash-after-events N` aborts the process — SIGKILL-style, no flush,
//! no destructors — as soon as N events have been journaled. CI's crash
//! smoke uses it to die mid-round at a deterministic point, then verifies
//! a recovered run's trace is byte-identical to an unkilled one.

use std::io::{BufRead, Write};
use std::path::PathBuf;

use limeqo_svc::{handle_init, Reply, Service};

struct Args {
    dir: PathBuf,
    script: Option<PathBuf>,
    crash_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut script = None;
    let mut crash_after = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(it.next().ok_or("--dir needs a value")?)),
            "--script" => script = Some(PathBuf::from(it.next().ok_or("--script needs a value")?)),
            "--crash-after-events" => {
                let v = it.next().ok_or("--crash-after-events needs a value")?;
                crash_after = Some(v.parse().map_err(|_| format!("bad event count {v:?}"))?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: limeqo-svc --dir STATE_DIR [--script FILE] [--crash-after-events N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { dir: dir.ok_or("--dir is required")?, script, crash_after })
}

fn serve(
    mut svc: Option<Service>,
    args: &Args,
    lines: impl Iterator<Item = std::io::Result<String>>,
) -> Result<(), String> {
    let stdout = std::io::stdout();
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let reply = match &mut svc {
            Some(s) => s.handle(line),
            None => match handle_init(&args.dir, line, args.crash_after) {
                Ok((s, reply)) => {
                    svc = Some(s);
                    Reply::Line(reply)
                }
                Err(msg) => Reply::Line(format!("{{\"ok\":false,\"error\":{:?}}}", msg)),
            },
        };
        {
            let mut out = stdout.lock();
            writeln!(out, "{}", reply.line()).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
        }
        if matches!(reply, Reply::Shutdown(_)) {
            return Ok(());
        }
    }
    // EOF without a shutdown op: flush the journal anyway (graceful stop).
    if let Some(mut s) = svc.take() {
        s.handle(r#"{"op":"shutdown"}"#);
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("limeqo-svc: {e}");
            std::process::exit(2);
        }
    };
    let svc = if Service::exists(&args.dir) {
        match Service::open(&args.dir, args.crash_after) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("limeqo-svc: recovery failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let result = match &args.script {
        Some(path) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("limeqo-svc: cannot open script {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            serve(svc, &args, std::io::BufReader::new(file).lines())
        }
        None => {
            let stdin = std::io::stdin();
            serve(svc, &args, stdin.lock().lines())
        }
    };
    if let Err(e) = result {
        eprintln!("limeqo-svc: {e}");
        std::process::exit(1);
    }
}
