//! `limeqo-svc` — the always-on optimizer daemon.
//!
//! ```text
//! limeqo-svc --dir STATE_DIR [--script FILE] [--crash-after-events N]
//! ```
//!
//! Requests are newline-delimited JSON, one object per line, read from
//! stdin (or `--script FILE`); responses go to stdout, one line per
//! request (see the `limeqo_svc` crate docs for the protocol). On an
//! existing state directory the daemon recovers from the journal before
//! serving; on a fresh one the first request must be `init`.
//!
//! `--crash-after-events N` aborts the process — SIGKILL-style, no flush,
//! no destructors — as soon as N events have been journaled. CI's crash
//! smoke uses it to die mid-round at a deterministic point, then verifies
//! a recovered run's trace is byte-identical to an unkilled one.
//!
//! `--fault-at N[:KIND]` is the chaos dev flag: it wraps the state
//! directory in a fault-injecting storage layer that fails the N-th
//! journal append (0-based; KIND one of `fail`, `short`, `sync`,
//! `enospc`, default `fail`). The daemon is expected to keep serving
//! degraded — CI's chaos smoke asserts `status` reports
//! `"degraded":true`, hints still work, and a restart comes up clean.

use std::io::{BufRead, Write};
use std::path::PathBuf;

use limeqo_core::{FaultAt, FaultKind, FaultScript, FaultStorage, FsStorage, OpClass, Storage};
use limeqo_svc::{handle_init_with, Reply, Service};

struct Args {
    dir: PathBuf,
    script: Option<PathBuf>,
    crash_after: Option<u64>,
    fault: Option<FaultScript>,
}

/// `N[:KIND]` — fail the N-th journal append with KIND.
fn parse_fault(v: &str) -> Result<FaultScript, String> {
    let (at, kind) = match v.split_once(':') {
        Some((at, kind)) => (at, kind),
        None => (v, "fail"),
    };
    let at: u64 = at.parse().map_err(|_| format!("bad fault op index {at:?}"))?;
    let kind = match kind {
        "fail" => FaultKind::FailOp,
        // Half a CRC header: enough to tear the record, not enough to
        // accidentally form a valid one.
        "short" => FaultKind::ShortWrite(4),
        "sync" => FaultKind::FailSync,
        "enospc" => FaultKind::Enospc,
        other => return Err(format!("unknown fault kind {other:?}")),
    };
    Ok(FaultScript::single(FaultAt::Class(OpClass::Append, at), kind))
}

fn storage_for(args: &Args) -> Box<dyn Storage> {
    match &args.fault {
        Some(script) => Box::new(FaultStorage::new(Box::new(FsStorage), script.clone())),
        None => Box::new(FsStorage),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut script = None;
    let mut crash_after = None;
    let mut fault = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(it.next().ok_or("--dir needs a value")?)),
            "--script" => script = Some(PathBuf::from(it.next().ok_or("--script needs a value")?)),
            "--crash-after-events" => {
                let v = it.next().ok_or("--crash-after-events needs a value")?;
                crash_after = Some(v.parse().map_err(|_| format!("bad event count {v:?}"))?);
            }
            "--fault-at" => {
                let v = it.next().ok_or("--fault-at needs a value (N or N:KIND)")?;
                fault = Some(parse_fault(&v)?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: limeqo-svc --dir STATE_DIR [--script FILE] \
[--crash-after-events N] [--fault-at N[:KIND]]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { dir: dir.ok_or("--dir is required")?, script, crash_after, fault })
}

fn serve(
    mut svc: Option<Service>,
    args: &Args,
    lines: impl Iterator<Item = std::io::Result<String>>,
) -> Result<(), String> {
    let stdout = std::io::stdout();
    for line in lines {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let reply = match &mut svc {
            Some(s) => s.handle(line),
            None => match handle_init_with(storage_for(args), &args.dir, line, args.crash_after) {
                Ok((s, reply)) => {
                    svc = Some(s);
                    Reply::Line(reply)
                }
                Err(msg) => Reply::Line(format!("{{\"ok\":false,\"error\":{:?}}}", msg)),
            },
        };
        {
            let mut out = stdout.lock();
            writeln!(out, "{}", reply.line()).map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
        }
        if matches!(reply, Reply::Shutdown(_)) {
            return Ok(());
        }
    }
    // EOF without a shutdown op: flush the journal anyway (graceful stop).
    if let Some(mut s) = svc.take() {
        s.handle(r#"{"op":"shutdown"}"#);
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("limeqo-svc: {e}");
            std::process::exit(2);
        }
    };
    let svc = if Service::exists(&args.dir) {
        match Service::open_with(storage_for(&args), &args.dir, args.crash_after) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("limeqo-svc: recovery failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let result = match &args.script {
        Some(path) => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("limeqo-svc: cannot open script {}: {e}", path.display());
                    std::process::exit(2);
                }
            };
            serve(svc, &args, std::io::BufReader::new(file).lines())
        }
        None => {
            let stdin = std::io::stdin();
            serve(svc, &args, stdin.lock().lines())
        }
    };
    if let Err(e) = result {
        eprintln!("limeqo-svc: {e}");
        std::process::exit(1);
    }
}
