//! Offline shim for the `criterion` benchmarking crate.
//!
//! Provides the API surface the workspace's benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`] —
//! with a deliberately simple measurement loop: warm up once, then time
//! batches of iterations for a fixed wall-clock budget and report the mean,
//! best, and iteration count per benchmark. No statistics, plots, or saved
//! baselines; `cargo bench` prints one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget. Kept short: these benches exist to
/// compare hot-path changes between commits, not to publish rigorous CIs.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
const MAX_ITERS: u64 = 10_000;

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    /// Substring filter forwarded from `cargo bench -- <filter>`.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.filter.as_deref(), id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored: the shim's fixed time budget plays the role of
    /// criterion's sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored, as with [`Self::sample_size`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.filter.as_deref(), &full, f);
        self
    }

    pub fn bench_with_input<I, D: ?Sized, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &D),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_one(self.criterion.filter.as_deref(), &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    total: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocators outside the measurement).
        black_box(f());
        let budget_start = Instant::now();
        while self.iters < MAX_ITERS && budget_start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            self.total += dt;
            if dt < self.best {
                self.best = dt;
            }
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(filter: Option<&str>, id: &str, mut f: F) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher { total: Duration::ZERO, best: Duration::MAX, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{id:<48} (no iterations recorded)");
        return;
    }
    let mean = b.total / b.iters as u32;
    println!("{id:<48} mean {:>12?}  best {:>12?}  ({} iters)", mean, b.best, b.iters);
}

/// Build a group runner function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point: run every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
