//! Offline shim for the `proptest` property-testing crate.
//!
//! Implements the subset this workspace's `tests/tests/properties.rs` uses:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)`
//!   items, with an optional leading `#![proptest_config(..)]`,
//! * [`test_runner::ProptestConfig`] with a `cases` count,
//! * range strategies (`0u64..500`, `2usize..7`, `0.1f64..0.8`, inclusive
//!   variants) via the [`strategy::Strategy`] trait, plus tuple strategies
//!   (`(2usize..9, 1usize..4)`) and `prop_map` for derived inputs,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream, by design: inputs are drawn from a
//! deterministic per-case SplitMix64 stream (every run tests the same
//! `cases` inputs — good for CI reproducibility), and there is no shrinking;
//! a failing case panics immediately with the case index in the message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic per-test-case input source.
    pub struct CaseRng(pub StdRng);

    impl CaseRng {
        /// Derive the stream for `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> CaseRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            CaseRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)))
        }
    }

    /// A source of generated input values. Upstream proptest strategies
    /// carry shrinking machinery; this shim only samples.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut CaseRng) -> Self::Value;

        /// Derive a strategy by mapping generated values (upstream's
        /// `prop_map`, minus shrinking).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { strategy: self, map: f }
        }
    }

    /// Adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        map: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut CaseRng) -> T {
            (self.map)(self.strategy.sample(rng))
        }
    }

    /// Tuples of strategies sample componentwise, in order — upstream's
    /// tuple strategies, used for correlated dimensions like `(rows, cols)`.
    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut CaseRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut CaseRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut CaseRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut CaseRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut CaseRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut CaseRng) -> f32 {
            rng.0.gen_range(self.clone())
        }
    }

    /// `Just(v)` — always yields `v`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut CaseRng) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    ///
    /// Only `cases` is honored; the other fields exist so struct-update
    /// syntax against upstream-looking configs keeps compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated input cases per property.
        pub cases: u32,
        /// Accepted and ignored (no shrinking in this shim).
        pub max_shrink_iters: u32,
        /// Accepted and ignored (inputs are never rejected in this shim).
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expand property functions into plain `#[test]` functions that loop over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut case_rng =
                    $crate::strategy::CaseRng::for_case(stringify!($name), case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut case_rng);
                )+
                let inputs = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?}, ",)+ ""),
                    case $(, $arg)+
                );
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = result {
                    eprintln!("proptest failure in {} [{}]", stringify!($name), inputs);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Property assertion; panics (upstream returns a `TestCaseError`, but the
/// observable effect inside `proptest!` — a failed case — is the same).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respected(a in 0u64..10, b in 2usize..5, x in 0.25f64..0.5) {
            prop_assert!(a < 10);
            prop_assert!((2..5).contains(&b));
            prop_assert!((0.25..0.5).contains(&x));
        }

        #[test]
        fn multiple_fns_parse(v in 1i32..4) {
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn tuple_strategies_sample_componentwise(dims in (2usize..6, 10u64..20)) {
            let (a, b) = dims;
            prop_assert!((2..6).contains(&a));
            prop_assert!((10..20).contains(&b));
        }

        #[test]
        fn prop_map_transforms(sq in (1i64..10).prop_map(|v| v * v)) {
            prop_assert!((1..100).contains(&sq));
            let root = (sq as f64).sqrt().round() as i64;
            prop_assert_eq!(root * root, sq);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::strategy::CaseRng::for_case("t", 3);
        let mut b = crate::strategy::CaseRng::for_case("t", 3);
        let sa = crate::strategy::Strategy::sample(&(0u64..1000), &mut a);
        let sb = crate::strategy::Strategy::sample(&(0u64..1000), &mut b);
        assert_eq!(sa, sb);
    }
}
