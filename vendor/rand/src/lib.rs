//! Offline shim for the `rand` crate (0.8-series API subset).
//!
//! The build container has no crates.io access, so this workspace vendors
//! the slice of `rand` it actually uses: [`rngs::StdRng`], [`SeedableRng`]
//! (`from_seed` / `seed_from_u64`), [`RngCore`] (`next_u32` / `next_u64`),
//! and [`Rng::gen_range`] over half-open and inclusive integer/float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but every consumer
//! in this workspace only requires determinism given a seed, not
//! bit-compatibility with upstream.
//!
//! Not implemented (unused here): distributions beyond uniform, `thread_rng`,
//! `fill_bytes` beyond a simple loop, small-crate forks (`rand_chacha`, ...).

pub mod rngs;

/// Core random number generation: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via SplitMix64 (matching the
    /// upstream contract that distinct `u64` seeds give distinct streams).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen_range` accepts: a range that can draw a uniform
/// sample from a generator.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range in gen_range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        debug_assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Lemire-style unbiased bounded sampling on a `u64` span (`bound` > 0).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range in gen_range");
    // Rejection sampling on the top of the range keeps the draw unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span + 1);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension over [`RngCore`]; blanket-implemented.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Uniform draw of a "standard" value; only `f64`/`f32` in `[0,1)` and
    /// full-width integers are supported by this shim.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Marker for types `Rng::gen` can produce.
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let k = rng.gen_range(0usize..=4);
            assert!(k <= 4);
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
