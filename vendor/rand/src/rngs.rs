//! Standard generator for the shim: xoshiro256++.

use crate::{RngCore, SeedableRng};

/// Drop-in stand-in for `rand::rngs::StdRng`.
///
/// Upstream uses ChaCha12; this shim uses xoshiro256++ (Blackman/Vigna),
/// which is far smaller to implement, passes BigCrush, and is more than
/// adequate for simulation seeding. Streams are deterministic per seed but
/// intentionally NOT bit-compatible with upstream `StdRng`.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Expose the raw xoshiro256++ state for persistence (shim extension,
    /// not part of the upstream `rand` API). The four words fully describe
    /// the generator position; [`StdRng::from_state`] restores it exactly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`StdRng::state`] snapshot (shim
    /// extension). The all-zero state is invalid for xoshiro and can only
    /// be produced by a corrupted snapshot, so it is rejected loudly.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "xoshiro256++ state must be non-zero");
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}
