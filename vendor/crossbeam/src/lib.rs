//! Offline shim for the `crossbeam` facade crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace, and since
//! Rust 1.63 the standard library provides scoped threads natively, so this
//! shim is a thin adapter over [`std::thread::scope`] that reproduces the
//! crossbeam calling convention:
//!
//! * the closure passed to [`thread::Scope::spawn`] receives `&Scope` (so
//!   `|_|` call sites compile unchanged),
//! * [`thread::scope`] returns `Result<R, _>` (crossbeam reports child
//!   panics as `Err`; with std scoped threads an unjoined child panic is
//!   propagated on exit instead, which every call site here — all of which
//!   immediately `.unwrap()`/`.expect()` — treats identically).

pub mod thread {
    use std::any::Any;

    /// Adapter around [`std::thread::Scope`] exposing crossbeam's `spawn`
    /// signature (closure takes `&Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives this scope so it can
        /// spawn nested threads, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Create a scope for spawning borrowing threads; joins all children
    /// before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|inner| f(&Scope { inner })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn spawn_and_collect() {
            let mut out = vec![0usize; 4];
            super::scope(|scope| {
                for (i, slot) in out.iter_mut().enumerate() {
                    scope.spawn(move |_| *slot = i * i);
                }
            })
            .unwrap();
            assert_eq!(out, vec![0, 1, 4, 9]);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let total = std::sync::atomic::AtomicUsize::new(0);
            super::scope(|scope| {
                scope.spawn(|inner| {
                    inner.spawn(|_| {
                        total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    });
                });
            })
            .unwrap();
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 1);
        }
    }
}
