//! Shared helpers for the cross-crate integration tests.

use limeqo_core::explore::MatOracle;
use limeqo_sim::workloads::{OracleMatrices, Workload, WorkloadSpec};

/// Build a tiny simulated workload plus its oracle matrices.
pub fn tiny_workload(n: usize, seed: u64) -> (Workload, OracleMatrices, MatOracle) {
    let mut w = WorkloadSpec::tiny(n, seed).build();
    let m = w.build_oracle();
    let oracle = MatOracle::new(m.true_latency.clone(), Some(m.est_cost.clone()));
    (w, m, oracle)
}
