//! The sublinear selection subsystem's cross-crate contract
//! (`limeqo_core::select` + the workload matrix's Fenwick rank index):
//! index consistency under arbitrary mutation interleavings, exact
//! uniform-without-replacement sampling, heap-vs-full-sort equivalence,
//! and the `#[ignore]`d scale guard that keeps a 100k×49 Random `select`
//! from ever re-materializing the unobserved set.

use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::policy::{Policy, PolicyCtx, RandomPolicy};
use limeqo_core::select::top_m_by;
use limeqo_linalg::rng::SeededRng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// The Fenwick rank index must agree with `unobserved_cells()` (the
    /// row-major enumeration over the CSR index) at every rank, under any
    /// interleaving of `set_complete` / `set_censored` / `add_rows`.
    #[test]
    fn fenwick_rank_index_consistent_under_interleavings(
        seed in 0u64..10_000,
        n in 1usize..7,
        k in 2usize..7,
        steps in 10usize..120,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut wm = WorkloadMatrix::new(n, k);
        for _ in 0..steps {
            match rng.index(4) {
                0 => {
                    let (r, c) = (rng.index(wm.n_rows()), rng.index(k));
                    wm.set_complete(r, c, rng.uniform(0.1, 9.0));
                }
                1 => {
                    let (r, c) = (rng.index(wm.n_rows()), rng.index(k));
                    wm.set_censored(r, c, rng.uniform(0.1, 9.0));
                }
                2 => wm.add_rows(1 + rng.index(2)),
                _ => {
                    // Re-observe an already observed cell: the index and
                    // the Fenwick counts must not double-move.
                    let r = rng.index(wm.n_rows());
                    if let Some(&c) = wm.observed_cols(r).first() {
                        wm.set_complete(r, c as usize, rng.uniform(0.1, 9.0));
                    }
                }
            }
            let dense: Vec<(usize, usize)> = wm.unobserved_cells().collect();
            prop_assert_eq!(dense.len(), wm.unobserved_count());
            for (rank, &cell) in dense.iter().enumerate() {
                prop_assert_eq!(wm.unobserved_at_rank(rank), cell);
            }
            for r in 0..wm.n_rows() {
                prop_assert_eq!(
                    wm.row_unobserved_count(r),
                    (0..k).filter(|&c| !wm.cell(r, c).is_observed()).count()
                );
            }
        }
    }

    /// Bounded heap selection == the stable full sort's prefix, on random
    /// score vectors with plenty of exact ties — the equivalence that let
    /// the Eq. 6 and censored-fallback sorts be replaced without moving a
    /// single pick.
    #[test]
    fn heap_select_equals_full_sort_top_m(seed in 0u64..10_000, n in 1usize..80) {
        let mut rng = SeededRng::new(seed);
        let m = rng.index(n + 3);
        let items: Vec<(f64, usize, usize, f64)> = (0..n)
            .map(|row| {
                // Quantized scores force ties; distinct (row, col) keeps
                // the explicit total order total.
                let score = (rng.uniform(0.0, 3.0) * 3.0).floor() / 3.0;
                (score, row, rng.index(5), rng.uniform(0.0, 1.0))
            })
            .collect();
        let order = |a: &(f64, usize, usize, f64), b: &(f64, usize, usize, f64)| {
            b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
        };
        let mut sorted = items.clone();
        sorted.sort_by(order);
        sorted.truncate(m);
        prop_assert_eq!(top_m_by(items, m, order), sorted);
    }
}

/// The sampler must be exactly uniform without replacement: over many
/// seeds on a small matrix, every unobserved cell is drawn equally often,
/// every draw within one batch is distinct, and observed cells never
/// appear.
#[test]
fn sampler_is_uniform_without_replacement() {
    // 2 rows × 3 cols, default column observed → 4 unobserved cells.
    let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0], 3);
    let cells = [(0usize, 1usize), (0, 2), (1, 1), (1, 2)];
    let runs = 4000usize;
    let mut counts = std::collections::HashMap::new();
    let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
    for seed in 0..runs as u64 {
        let mut rng = SeededRng::new(seed);
        let sel = RandomPolicy.select(&ctx, 2, &mut rng);
        assert_eq!(sel.len(), 2);
        assert_ne!((sel[0].row, sel[0].col), (sel[1].row, sel[1].col), "replacement at {seed}");
        for c in &sel {
            assert!(cells.contains(&(c.row, c.col)), "observed cell drawn at seed {seed}");
            assert_eq!(c.timeout, wm.row_best(c.row).unwrap().1);
            *counts.entry((c.row, c.col)).or_insert(0usize) += 1;
        }
    }
    // Each of the 4 cells lands in a 2-of-4 sample with probability 1/2:
    // expected 2000 hits, σ ≈ 32 — a ±10 % band is a > 6σ allowance.
    for &cell in &cells {
        let got = counts[&cell];
        let expect = runs / 2;
        assert!(
            (got as f64 - expect as f64).abs() < 0.1 * expect as f64,
            "cell {cell:?} drawn {got} times, expected ~{expect}"
        );
    }
}

/// Exhaustion: asking for more cells than exist returns each exactly once.
#[test]
fn sampler_exhausts_cleanly() {
    let wm = WorkloadMatrix::with_defaults(&[1.0, 2.0, 3.0], 4);
    let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
    let mut rng = SeededRng::new(5);
    let sel = RandomPolicy.select(&ctx, 100, &mut rng);
    assert_eq!(sel.len(), 9, "3 rows × 3 unobserved cols each");
    let mut seen: Vec<_> = sel.iter().map(|c| (c.row, c.col)).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 9);
}

/// Scale guard (slow tier): a Random `select` at 100k×49 must stay far
/// below the ~190 ms/step the old materialize-and-shuffle path cost —
/// the budget is generous (20 ms/step averaged over 50 steps) so it only
/// trips if per-step work becomes O(cells) again, not on machine noise.
#[test]
#[ignore = "scale tier: builds a 100k-row matrix; run via ./ci.sh --ignored"]
fn random_select_at_100k_is_sublinear() {
    let defaults: Vec<f64> = (0..100_000).map(|i| 1.0 + (i % 7) as f64).collect();
    let mut wm = WorkloadMatrix::with_defaults(&defaults, 49);
    let mut rng = SeededRng::new(1);
    for _ in 0..50_000 {
        let (r, c) = (rng.index(100_000), 1 + rng.index(48));
        wm.set_complete(r, c, 1.0);
    }
    let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
    let mut sel_rng = SeededRng::new(2);
    let _ = RandomPolicy.select(&ctx, 4096, &mut sel_rng); // warm-up
    let t = std::time::Instant::now();
    for _ in 0..50 {
        let sel = std::hint::black_box(RandomPolicy.select(&ctx, 4096, &mut sel_rng));
        assert_eq!(sel.len(), 4096);
    }
    let per_select = t.elapsed().as_secs_f64() / 50.0;
    assert!(
        per_select < 0.020,
        "Random select at 100k×49 took {:.4} s/step — selection is no longer sublinear \
         (the old materializing path measured ~0.19 s/step)",
        per_select
    );
}
