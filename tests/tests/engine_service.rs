//! Batch-vs-event equivalence: the tick-driven engine behind `limeqo-svc`
//! must produce the *same bytes* as the legacy run-to-completion drivers.
//!
//! `verify_scenario_via_engine` replays a scenario twice — once through
//! `Explorer`/`OnlineExplorer`, once through raw `Engine::step(Event)` —
//! and compares the exploration trace entry-by-entry on
//! `(row, col, charged.to_bits(), censored)` plus the derived totals.
//! The fast tier pins one offline, one drifting, and one online scenario;
//! the `#[ignore]`d test sweeps the whole registry (also exercised by
//! `scenario --via-service` in CI).

use limeqo_bench::scenario_runner::verify_scenario_via_engine;
use limeqo_sim::scenario::registry;

fn verify(name: &str) {
    let specs = registry();
    let spec = specs
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing from registry"));
    verify_scenario_via_engine(spec).unwrap_or_else(|msg| panic!("{msg}"));
}

#[test]
fn engine_events_match_offline_driver() {
    verify("job-mini");
}

#[test]
fn engine_events_match_drifting_driver() {
    // Exercises AddQueries + DataShift events, including retained priors.
    verify("data-shift-retained");
    verify("growing-catalog");
}

#[test]
fn engine_events_match_online_driver() {
    verify("online-zipf");
}

#[test]
#[ignore = "slow tier: full registry sweep (./ci.sh --ignored)"]
fn engine_events_match_every_registry_scenario() {
    for spec in &registry() {
        verify_scenario_via_engine(spec).unwrap_or_else(|msg| panic!("{msg}"));
    }
}
