//! Cross-crate property-based tests (proptest) on the paper's invariants.

use limeqo_core::complete::{AlsCompleter, Completer};
use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::matrix::{Cell, WorkloadMatrix};
use limeqo_core::policy::{GreedyPolicy, LimeQoPolicy, Policy, PolicyCtx, RandomPolicy};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::{cholesky, lu, ridge_solve, svd_thin, Mat};
use limeqo_sim::catalog::{Catalog, CatalogSpec};
use limeqo_sim::executor::Executor;
use limeqo_sim::hints::HintSpace;
use limeqo_sim::optimizer::Optimizer;
use limeqo_sim::plan::PlanTree;
use limeqo_sim::query::{generate_query, JoinShape, QueryClass, QueryGenParams};
use proptest::prelude::*;

fn arb_catalog(seed: u64) -> Catalog {
    Catalog::generate(
        &CatalogSpec {
            name: "prop".into(),
            n_tables: 8,
            rows_range: (1e3, 1e6),
            width_range: (50.0, 300.0),
            index_prob: 0.5,
            fact_fraction: 0.3,
        },
        &mut SeededRng::new(seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The optimizer must return a complete, executable plan covering all
    /// tables under every one of the 49 hint configurations, and its true
    /// cost must never include a disable penalty.
    #[test]
    fn optimizer_valid_under_all_hints(seed in 0u64..500, n_tables in 2usize..7) {
        let cat = arb_catalog(seed);
        let q = generate_query(
            0,
            &QueryGenParams {
                class: QueryClass::NestLoopTrap,
                n_tables,
                shape: JoinShape::Chain,
                pred_sel_range: (0.01, 0.5),
                fanout: QueryGenParams::DEFAULT_FANOUT,
                pred_prob: 0.5,
                template: 0,
            },
            &cat,
            &mut SeededRng::new(seed ^ 0xABC),
        );
        let opt = Optimizer::new(&cat);
        let exec = Executor::new(&cat);
        for (hi, h) in HintSpace::all().configs().iter().enumerate() {
            let mut plan = opt.plan(&q, *h);
            prop_assert_eq!(plan.join_count(), n_tables - 1);
            let mut seen = vec![false; n_tables];
            plan.visit(&mut |node| {
                if let PlanTree::Scan { table_ref, .. } = node {
                    seen[*table_ref] = true;
                }
            });
            prop_assert!(seen.iter().all(|&s| s));
            let lat = exec.latency_seconds(&mut plan, &q, hi);
            prop_assert!(lat.is_finite() && lat > 0.0 && lat < 1e7);
        }
    }

    /// ALS output: keeps observed cells exactly, respects censored bounds,
    /// non-negative everywhere.
    #[test]
    fn als_contract(seed in 0u64..500, n in 5usize..25, frac in 0.1f64..0.8) {
        let mut rng = SeededRng::new(seed);
        let q = rng.uniform_mat(n, 3, 0.1, 2.0);
        let h = rng.uniform_mat(10, 3, 0.1, 2.0);
        let truth = q.matmul_t(&h).unwrap();
        let mut wm = WorkloadMatrix::new(n, 10);
        for i in 0..n {
            wm.set_complete(i, 0, truth[(i, 0)]);
            for j in 1..10 {
                if rng.chance(frac) {
                    wm.set_complete(i, j, truth[(i, j)]);
                }
            }
        }
        let first_unobserved = wm.unobserved_cells().next();
        if let Some((ci, cj)) = first_unobserved {
            wm.set_censored(ci, cj, 123.0);
        }
        let mut als = AlsCompleter::paper_default(seed);
        let pred = als.complete(&wm);
        for i in 0..n {
            for j in 0..10 {
                match wm.cell(i, j) {
                    Cell::Complete(v) => prop_assert_eq!(pred[(i, j)], v),
                    Cell::Censored(b) => prop_assert!(pred[(i, j)] >= b - 1e-9),
                    Cell::Unobserved => prop_assert!(pred[(i, j)] >= 0.0),
                }
            }
        }
    }

    /// No-regressions guarantee: under any policy and seed, the workload
    /// latency curve is monotone non-increasing (without shifts).
    #[test]
    fn exploration_never_regresses(seed in 0u64..200, policy_id in 0usize..3) {
        let mut rng = SeededRng::new(seed);
        let qm = rng.uniform_mat(12, 2, 0.5, 2.0);
        let hm = rng.uniform_mat(8, 2, 0.2, 1.5);
        let mut lat = qm.matmul_t(&hm).unwrap();
        for i in 0..12 {
            lat[(i, 0)] += 1.0;
        }
        let oracle = MatOracle::new(lat, None);
        let policy: Box<dyn Policy> = match policy_id {
            0 => Box::new(RandomPolicy),
            1 => Box::new(GreedyPolicy),
            _ => Box::new(LimeQoPolicy::with_als(seed)),
        };
        let cfg = ExploreConfig { batch: 4, seed, ..Default::default() };
        let mut ex = Explorer::new(&oracle, policy, cfg, 12);
        ex.run_until(1e9);
        let lats: Vec<f64> = ex.curve().points.iter().map(|p| p.latency).collect();
        for w in lats.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9);
        }
    }

    /// Timeout accounting: each probe charges at most its timeout; the
    /// final clock is bounded by Σ min(truth, row-default) over all cells.
    #[test]
    fn time_spent_bounded(seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let lat = rng.uniform_mat(10, 6, 0.1, 5.0);
        let oracle = MatOracle::new(lat.clone(), None);
        let cfg = ExploreConfig { batch: 4, seed, ..Default::default() };
        let mut ex = Explorer::new(&oracle, Box::new(RandomPolicy), cfg, 10);
        ex.run_until(1e9);
        let mut bound = 0.0;
        for i in 0..10 {
            for j in 1..6 {
                bound += lat[(i, j)].min(lat[(i, 0)]);
            }
        }
        // Random policy timeouts are the current row best (≤ default), so
        // the total spend cannot exceed the default-timeout bound.
        prop_assert!(ex.time_spent() <= bound + 1e-6);
    }

    /// LU with partial pivoting solves well-conditioned square systems:
    /// the residual ‖A·X̂ − B‖∞ stays at float-noise level.
    #[test]
    fn lu_solve_residual_bound(dims in (2usize..12, 1usize..5), seed in 0u64..500) {
        let (n, q) = dims;
        let mut rng = SeededRng::new(seed ^ 0x10);
        let mut a = rng.gaussian_mat(n, n, 0.0, 1.0);
        for i in 0..n {
            a[(i, i)] += n as f64; // diagonally dominant => invertible
        }
        let x_true = rng.gaussian_mat(n, q, 0.0, 2.0);
        let b = a.matmul(&x_true).unwrap();
        let x = lu(&a).unwrap().solve(&b).unwrap();
        let residual = limeqo_linalg::max_abs_diff(&a.matmul(&x).unwrap(), &b);
        prop_assert!(residual < 1e-8 * n as f64, "residual {residual}");
        prop_assert!(limeqo_linalg::max_abs_diff(&x, &x_true) < 1e-6, "solution off");
    }

    /// Cholesky of an SPD matrix reconstructs it: L·Lᵀ = GᵀG + δI.
    #[test]
    fn cholesky_reconstruction(dims in (1usize..8).prop_map(|p| (p + 2, p)), seed in 0u64..500) {
        let (m, p) = dims;
        let mut rng = SeededRng::new(seed ^ 0x20);
        let g = rng.gaussian_mat(m, p, 0.0, 1.5);
        let mut a = g.t_matmul(&g).unwrap();
        for i in 0..p {
            a[(i, i)] += 0.1;
        }
        let f = cholesky(&a).unwrap();
        let l = f.l();
        let back = l.matmul_t(l).unwrap();
        let err = limeqo_linalg::max_abs_diff(&a, &back);
        prop_assert!(err < 1e-9 * (1.0 + m as f64), "reconstruction err {err}");
        // Factor is lower triangular with positive diagonal.
        for i in 0..p {
            prop_assert!(l[(i, i)] > 0.0);
            for j in (i + 1)..p {
                prop_assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    /// `ridge_solve` satisfies its normal equations
    /// `(GᵀG + λI)X = GᵀB` to float noise, for λ = 0 and λ > 0 alike —
    /// the contract Algorithm 2's ALS factor updates rely on.
    #[test]
    fn ridge_solve_residual_bounds(
        dims in (3usize..16, 1usize..5, 1usize..4),
        lambda in 0.0f64..3.0,
        seed in 0u64..500,
    ) {
        let (m, p, q) = dims;
        let mut rng = SeededRng::new(seed ^ 0x30);
        let g = rng.gaussian_mat(m, p, 0.0, 1.0);
        let b = rng.gaussian_mat(m, q, 0.0, 2.0);
        let x = ridge_solve(&g, &b, lambda).unwrap();
        prop_assert_eq!(x.shape(), (p, q));
        let mut lhs = g.t_matmul(&g).unwrap().matmul(&x).unwrap();
        lhs.axpy(lambda, &x).unwrap();
        let rhs = g.t_matmul(&b).unwrap();
        let scale = 1.0 + rhs.as_slice().iter().fold(0.0f64, |a, v| a.max(v.abs()));
        let residual = limeqo_linalg::max_abs_diff(&lhs, &rhs);
        prop_assert!(residual < 1e-7 * scale * m as f64, "normal-equation residual {residual}");
        // Ridge shrinks: a strictly positive λ bounds the solution norm by
        // the data: λ‖X‖F ≤ ‖GᵀB‖F (from the normal equations and PSD GᵀG).
        if lambda > 1e-9 {
            let xf = limeqo_linalg::frobenius_norm(&x);
            let gtbf = limeqo_linalg::frobenius_norm(&rhs);
            prop_assert!(lambda * xf <= gtbf + 1e-7, "ridge bound: {} vs {}", lambda * xf, gtbf);
        }
    }

    /// Thin SVD reconstructs arbitrary matrices.
    #[test]
    fn svd_reconstruction(rows in 2usize..30, cols in 2usize..12, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let a = rng.gaussian_mat(rows, cols, 0.0, 3.0);
        let svd = svd_thin(&a).unwrap();
        let back = svd.reconstruct(None);
        let err = limeqo_linalg::max_abs_diff(&a, &back);
        prop_assert!(err < 1e-7, "err {err}");
        for w in svd.s.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    /// Policies only ever select non-complete cells, with positive timeouts.
    #[test]
    fn policy_selections_valid(seed in 0u64..200, frac in 0.0f64..0.7) {
        let mut rng = SeededRng::new(seed);
        let truth = rng.uniform_mat(10, 8, 0.1, 4.0);
        let mut wm = WorkloadMatrix::new(10, 8);
        for i in 0..10 {
            wm.set_complete(i, 0, truth[(i, 0)]);
            for j in 1..8 {
                if rng.chance(frac) {
                    wm.set_complete(i, j, truth[(i, j)]);
                }
            }
        }
        let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };
        let mut policy = LimeQoPolicy::with_als(seed);
        let sel = policy.select(&ctx, 5, &mut rng);
        for c in sel {
            prop_assert!(!matches!(wm.cell(c.row, c.col), Cell::Complete(_)));
            prop_assert!(c.timeout > 0.0);
        }
    }
}

/// Non-proptest sanity check: Mat round trip through the sim layer types.
#[test]
fn mat_interop_between_crates() {
    let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    let oracle = MatOracle::new(m.clone(), None);
    assert_eq!(oracle.latency().as_slice(), m.as_slice());
}
