//! Workspace wiring smoke test.
//!
//! Guards the build layer itself: every crate in the DAG
//! (`linalg <- core <- sim <- tests`) is exercised through one LimeQO
//! exploration round over a simulated workload, and the simulated-time
//! accounting invariants of `Explorer::step` (Eq. 3: each executed cell
//! charges `min(true latency, timeout)` seconds) are checked end to end.

use limeqo_core::explore::{ExploreConfig, Explorer};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_integration_tests::tiny_workload;

#[test]
fn one_limeqo_round_keeps_time_accounting_monotone() {
    let (w, m, oracle) = tiny_workload(15, 1207);
    let cfg = ExploreConfig { batch: 4, seed: 9, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(9)), cfg, w.n());

    assert_eq!(ex.time_spent(), 0.0, "clock must start at zero");
    let mut last_time = 0.0;
    let mut last_cells = 0usize;
    let mut rounds = 0usize;
    while rounds < 8 && ex.step() {
        // The simulated clock only moves forward, and only when cells run.
        assert!(
            ex.time_spent() > last_time,
            "round {rounds}: clock did not advance ({} -> {})",
            last_time,
            ex.time_spent()
        );
        assert!(ex.cells_executed() > last_cells, "round {rounds}: no cells executed");
        // Each executed cell charges at most the default-hint latency (the
        // starting per-row timeout) and more than zero seconds.
        let spent = ex.time_spent() - last_time;
        let ran = ex.cells_executed() - last_cells;
        let max_default: f64 = (0..w.n()).map(|i| m.true_latency[(i, 0)]).fold(0.0, f64::max);
        assert!(
            spent <= ran as f64 * max_default + 1e-9,
            "round {rounds}: charged {spent} s for {ran} cells (max default {max_default})"
        );
        last_time = ex.time_spent();
        last_cells = ex.cells_executed();
        rounds += 1;
    }
    assert!(rounds > 0, "LimeQO made no exploration progress at all");

    // The recorded curve mirrors the clock: times strictly increase and the
    // workload latency never regresses (no shifts in this run).
    let pts = &ex.curve().points;
    assert_eq!(pts.len(), rounds + 1, "initial point plus one per round");
    for pair in pts.windows(2) {
        assert!(pair[1].time > pair[0].time, "curve time must be monotone");
        assert!(pair[1].latency <= pair[0].latency + 1e-9, "latency must not regress");
    }
    // And the final point agrees with the explorer's own accounting.
    let last = pts.last().unwrap();
    assert!((last.time - ex.time_spent()).abs() < 1e-9);
    assert!((last.latency - ex.workload_latency()).abs() < 1e-9);
}
