//! Property test: kill the durable engine at *any* event boundary — with
//! or without a torn/corrupt journal tail — and recovery must resume the
//! run bit-identically.
//!
//! The driver here is honest about what survives a crash: the continuation
//! after `DurableEngine::recover` uses only engine-visible state (the
//! re-issued outstanding probes plus the tick loop's "no actions left"
//! termination), never the killed run's private bookkeeping. The reference
//! trajectory is an uninterrupted run of the identically-configured engine.

use std::path::PathBuf;

use limeqo_core::explore::ExploreConfig;
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::policy::LimeQoPolicy;
use limeqo_core::store::ObservationStore;
use limeqo_core::{Action, DurableConfig, DurableEngine, Engine, Event};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;
use proptest::prelude::*;

/// Safety net only — every case must exhaust the policy well below this.
const MAX_TICKS: usize = 4096;

fn truth_matrix(n: usize, k: usize, seed: u64) -> Mat {
    let mut rng = SeededRng::new(seed);
    let q = rng.uniform_mat(n, 3, 0.5, 2.0);
    let h = rng.uniform_mat(k, 3, 0.2, 1.5);
    let mut lat = q.matmul_t(&h).unwrap();
    for i in 0..n {
        lat[(i, 0)] = lat[(i, 0)] * 2.0 + 0.5;
    }
    lat
}

/// Reference, killed, and recovered engines must be configured identically
/// — recovery rebuilds static config from code, not from the journal.
fn fresh_engine(truth: &Mat) -> Engine<'static> {
    let (n, k) = truth.shape();
    let defaults: Vec<f64> = (0..n).map(|i| truth[(i, 0)]).collect();
    let store = ObservationStore::new(WorkloadMatrix::with_defaults(&defaults, k));
    let cfg = ExploreConfig { batch: 3, seed: 17, ..Default::default() };
    Engine::offline(store, Box::new(LimeQoPolicy::with_als(17)), None, &cfg)
}

fn observe(truth: &Mat, row: usize, col: usize, timeout: f64) -> Event {
    let t = truth[(row, col)];
    let censored = t > timeout;
    Event::Observation { row, col, value: if censored { timeout } else { t }, censored }
}

/// One trace entry as bit-comparable fields: (row, col, charged bits,
/// censored).
type TraceBits = Vec<(usize, usize, u64, bool)>;

fn trace_bits(engine: &Engine<'_>) -> TraceBits {
    engine.trace().iter().map(|t| (t.row, t.col, t.charged.to_bits(), t.censored)).collect()
}

/// Run the reference engine until the policy exhausts, recording every
/// input event in order — the exact sequence a durable run would journal.
fn reference_run(truth: &Mat) -> (Vec<Event>, TraceBits, f64, usize) {
    let mut engine = fresh_engine(truth);
    let mut events = Vec::new();
    for _ in 0..MAX_TICKS {
        events.push(Event::Tick);
        let actions = engine.step(Event::Tick);
        if actions.is_empty() {
            return (events, trace_bits(&engine), engine.time_spent(), engine.cells_executed());
        }
        for a in actions {
            if let Action::Probe { row, col, timeout } = a {
                let ev = observe(truth, row, col, timeout);
                events.push(ev.clone());
                engine.step(ev);
            }
        }
    }
    panic!("reference engine did not exhaust within {MAX_TICKS} ticks");
}

fn newest_wal(dir: &PathBuf) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|n| n.parse().ok())
        {
            if best.as_ref().map_or(true, |(b, _)| idx > *b) {
                best = Some((idx, path));
            }
        }
    }
    best.expect("a wal segment always exists").1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Journal the reference's event prefix, crash (drop without shutdown,
    /// optionally mangling the journal tail), recover, re-execute the
    /// re-issued outstanding probes, and run on to exhaustion: the final
    /// trace, clock, and cell count must match the uninterrupted run bit
    /// for bit.
    #[test]
    fn kill_anywhere_recovery_is_bit_identical(
        seed in 0u64..64,
        kill_frac in 0.0f64..1.0,
        tail_kind in 0usize..4,
        snapshot_every in 2usize..24,
    ) {
        let truth = truth_matrix(12, 6, seed);
        let (events, ref_trace, ref_time, ref_cells) = reference_run(&truth);
        let kill_at = ((events.len() as f64) * kill_frac) as usize;
        let kill_at = kill_at.min(events.len());

        let dir = std::env::temp_dir().join(format!(
            "limeqo-crashprop-{}-{seed}-{kill_at}-{tail_kind}-{snapshot_every}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurableConfig { snapshot_every, keep_snapshots: 2 };

        // The doomed run: journal the first `kill_at` events, then vanish.
        // Dropping without `shutdown()` models the kill — every record was
        // already flushed by `step`, matching the documented abort story.
        {
            let mut de =
                DurableEngine::create(&dir, fresh_engine(&truth), "crash-prop-v1", dcfg.clone())
                    .unwrap();
            for ev in &events[..kill_at] {
                de.step(ev.clone()).unwrap();
            }
        }

        // Optionally mangle the tail past the last complete record, the way
        // an OS-level crash can leave it.
        let wal = newest_wal(&dir);
        let garbage: &[u8] = match tail_kind {
            0 => b"",                                  // clean boundary
            1 => b"0123abcd T",                        // torn: no newline
            2 => b"00000000 O 1 2 3ff0000000000000 0\n", // full line, bad crc
            _ => b"\xff\xfe\x00 not a record at all\n", // binary junk
        };
        if !garbage.is_empty() {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
            f.write_all(garbage).unwrap();
        }

        // Recovery: rebuild the engine from code, replay snapshot + tail,
        // re-execute whatever probes were in flight, then keep exploring.
        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "crash-prop-v1", dcfg).unwrap();
        for cc in outstanding {
            de.step(observe(&truth, cc.row, cc.col, cc.timeout)).unwrap();
        }
        for _ in 0..MAX_TICKS {
            let actions = de.step(Event::Tick).unwrap();
            if actions.is_empty() {
                break;
            }
            for a in actions {
                if let Action::Probe { row, col, timeout } = a {
                    de.step(observe(&truth, row, col, timeout)).unwrap();
                }
            }
        }

        prop_assert_eq!(trace_bits(de.engine()), ref_trace);
        prop_assert_eq!(de.engine().time_spent().to_bits(), ref_time.to_bits());
        prop_assert_eq!(de.engine().cells_executed(), ref_cells);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
