//! Property test: kill the durable engine at *any* event boundary — with
//! or without a torn/corrupt journal tail — and recovery must resume the
//! run bit-identically.
//!
//! The driver here is honest about what survives a crash: the continuation
//! after `DurableEngine::recover` uses only engine-visible state (the
//! re-issued outstanding probes plus the tick loop's "no actions left"
//! termination), never the killed run's private bookkeeping. The reference
//! trajectory is an uninterrupted run of the identically-configured engine.

use std::path::PathBuf;

use limeqo_core::explore::ExploreConfig;
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::policy::LimeQoPolicy;
use limeqo_core::store::ObservationStore;
use limeqo_core::{
    Action, DurableConfig, DurableEngine, Engine, Event, FaultAt, FaultKind, FaultScript,
    FaultStorage, FsStorage,
};
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;
use proptest::prelude::*;

/// Safety net only — every case must exhaust the policy well below this.
const MAX_TICKS: usize = 4096;

fn truth_matrix(n: usize, k: usize, seed: u64) -> Mat {
    let mut rng = SeededRng::new(seed);
    let q = rng.uniform_mat(n, 3, 0.5, 2.0);
    let h = rng.uniform_mat(k, 3, 0.2, 1.5);
    let mut lat = q.matmul_t(&h).unwrap();
    for i in 0..n {
        lat[(i, 0)] = lat[(i, 0)] * 2.0 + 0.5;
    }
    lat
}

/// Reference, killed, and recovered engines must be configured identically
/// — recovery rebuilds static config from code, not from the journal.
fn fresh_engine(truth: &Mat) -> Engine<'static> {
    let (n, k) = truth.shape();
    let defaults: Vec<f64> = (0..n).map(|i| truth[(i, 0)]).collect();
    let store = ObservationStore::new(WorkloadMatrix::with_defaults(&defaults, k));
    let cfg = ExploreConfig { batch: 3, seed: 17, ..Default::default() };
    Engine::offline(store, Box::new(LimeQoPolicy::with_als(17)), None, &cfg)
}

fn observe(truth: &Mat, row: usize, col: usize, timeout: f64) -> Event {
    let t = truth[(row, col)];
    let censored = t > timeout;
    Event::Observation { row, col, value: if censored { timeout } else { t }, censored }
}

/// One trace entry as bit-comparable fields: (row, col, charged bits,
/// censored).
type TraceBits = Vec<(usize, usize, u64, bool)>;

fn trace_bits(engine: &Engine<'_>) -> TraceBits {
    engine.trace().iter().map(|t| (t.row, t.col, t.charged.to_bits(), t.censored)).collect()
}

/// Run the reference engine until the policy exhausts, recording every
/// input event in order — the exact sequence a durable run would journal.
fn reference_run(truth: &Mat) -> (Vec<Event>, TraceBits, f64, usize) {
    let mut engine = fresh_engine(truth);
    let mut events = Vec::new();
    for _ in 0..MAX_TICKS {
        events.push(Event::Tick);
        let actions = engine.step(Event::Tick);
        if actions.is_empty() {
            return (events, trace_bits(&engine), engine.time_spent(), engine.cells_executed());
        }
        for a in actions {
            if let Action::Probe { row, col, timeout } = a {
                let ev = observe(truth, row, col, timeout);
                events.push(ev.clone());
                engine.step(ev);
            }
        }
    }
    panic!("reference engine did not exhaust within {MAX_TICKS} ticks");
}

fn newest_wal(dir: &PathBuf) -> PathBuf {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if let Some(idx) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|n| n.parse().ok())
        {
            if best.as_ref().map_or(true, |(b, _)| idx > *b) {
                best = Some((idx, path));
            }
        }
    }
    best.expect("a wal segment always exists").1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Journal the reference's event prefix, crash (drop without shutdown,
    /// optionally mangling the journal tail), recover, re-execute the
    /// re-issued outstanding probes, and run on to exhaustion: the final
    /// trace, clock, and cell count must match the uninterrupted run bit
    /// for bit.
    #[test]
    fn kill_anywhere_recovery_is_bit_identical(
        seed in 0u64..64,
        kill_frac in 0.0f64..1.0,
        tail_kind in 0usize..4,
        snapshot_every in 2usize..24,
    ) {
        let truth = truth_matrix(12, 6, seed);
        let (events, ref_trace, ref_time, ref_cells) = reference_run(&truth);
        let kill_at = ((events.len() as f64) * kill_frac) as usize;
        let kill_at = kill_at.min(events.len());

        let dir = std::env::temp_dir().join(format!(
            "limeqo-crashprop-{}-{seed}-{kill_at}-{tail_kind}-{snapshot_every}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurableConfig { snapshot_every, keep_snapshots: 2 };

        // The doomed run: journal the first `kill_at` events, then vanish.
        // Dropping without `shutdown()` models the kill — every record was
        // already flushed by `step`, matching the documented abort story.
        {
            let mut de =
                DurableEngine::create(&dir, fresh_engine(&truth), "crash-prop-v1", dcfg.clone())
                    .unwrap();
            for ev in &events[..kill_at] {
                de.step(ev.clone()).unwrap();
            }
        }

        // Optionally mangle the tail past the last complete record, the way
        // an OS-level crash can leave it.
        let wal = newest_wal(&dir);
        let garbage: &[u8] = match tail_kind {
            0 => b"",                                  // clean boundary
            1 => b"0123abcd T",                        // torn: no newline
            2 => b"00000000 O 1 2 3ff0000000000000 0\n", // full line, bad crc
            _ => b"\xff\xfe\x00 not a record at all\n", // binary junk
        };
        if !garbage.is_empty() {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
            f.write_all(garbage).unwrap();
        }

        // Recovery: rebuild the engine from code, replay snapshot + tail,
        // re-execute whatever probes were in flight, then keep exploring.
        let (mut de, outstanding) =
            DurableEngine::recover(&dir, fresh_engine(&truth), "crash-prop-v1", dcfg).unwrap();
        for cc in outstanding {
            de.step(observe(&truth, cc.row, cc.col, cc.timeout)).unwrap();
        }
        for _ in 0..MAX_TICKS {
            let actions = de.step(Event::Tick).unwrap();
            if actions.is_empty() {
                break;
            }
            for a in actions {
                if let Action::Probe { row, col, timeout } = a {
                    de.step(observe(&truth, row, col, timeout)).unwrap();
                }
            }
        }

        prop_assert_eq!(trace_bits(de.engine()), ref_trace);
        prop_assert_eq!(de.engine().time_spent().to_bits(), ref_time.to_bits());
        prop_assert_eq!(de.engine().cells_executed(), ref_cells);
        let _ = std::fs::remove_dir_all(&dir);
    }

}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Chaos axis: inject one scripted storage fault (by global op index ×
    /// kind) into a durable run and demand there is no third outcome —
    /// either the fault surfaces as a clean typed error whose recovery is
    /// bit-identical, or the engine degrades and preserves the fault-free
    /// in-memory trace. Never a panic, never silent divergence.
    #[test]
    fn every_injected_fault_recovers_or_degrades_cleanly(
        seed in 0u64..32,
        fault_op in 0u64..300,
        fault_kind in 0usize..5,
        degrade in 0usize..2,
        snapshot_every in 2usize..16,
    ) {
        let degrade = degrade == 1;
        let truth = truth_matrix(12, 6, seed);
        let (events, ref_trace, ref_time, _) = reference_run(&truth);
        let kind = [
            FaultKind::FailOp,
            FaultKind::ShortWrite(4),
            FaultKind::FailSync,
            FaultKind::FailRename,
            FaultKind::Enospc,
        ][fault_kind];
        let script = FaultScript::single(FaultAt::Op(fault_op), kind);

        let dir = std::env::temp_dir().join(format!(
            "limeqo-chaosprop-{}-{seed}-{fault_op}-{fault_kind}-{degrade}-{snapshot_every}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dcfg = DurableConfig { snapshot_every, keep_snapshots: 2 };

        let storage = Box::new(FaultStorage::new(Box::new(FsStorage), script));
        let probe = storage.probe();
        let created = DurableEngine::create_with(
            storage,
            &dir,
            fresh_engine(&truth),
            "crash-prop-v1",
            dcfg.clone(),
        );
        let mut de = match created {
            Ok(de) => de,
            Err(e) => {
                // Outcome A (at birth): a clean typed error, an injected
                // fault behind it, and a directory a plain retry can
                // reinitialize.
                prop_assert!(probe.injected_total() > 0, "spurious create error: {e}");
                let _ = std::fs::remove_dir_all(&dir);
                let de = DurableEngine::create(
                    &dir, fresh_engine(&truth), "crash-prop-v1", dcfg,
                ).unwrap();
                drop(de);
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
        };

        let mut failed_at: Option<usize> = None;
        for (i, ev) in events.iter().enumerate() {
            if de.poisoned() || failed_at.is_some() {
                // Outcome B: degraded-but-serving. The in-memory engine
                // keeps applying the reference events (re-submitting the
                // one step() rejected without applying), so the trace
                // stays fault-free; rearm may restore durability at any
                // snapshot boundary along the way.
                de.step_degraded(ev.clone());
                continue;
            }
            if let Err(e) = de.step(ev.clone()) {
                prop_assert!(
                    probe.injected_total() > 0,
                    "step error without an injected fault: {e}"
                );
                failed_at = Some(i);
                if degrade {
                    de.step_degraded(ev.clone());
                } else {
                    break;
                }
            }
        }

        match failed_at {
            None => {
                // The fault either never fired or was absorbed (a failed
                // auto-snapshot retries at the next boundary; a failed GC
                // removal leaves extra files). The run itself must match
                // the reference exactly.
                prop_assert_eq!(trace_bits(de.engine()), ref_trace.clone());
                prop_assert_eq!(de.engine().time_spent().to_bits(), ref_time.to_bits());
            }
            Some(i) if degrade => {
                // Outcome B concluded: every reference event applied, in
                // order, exactly once — bit-identical memory.
                let _ = i;
                prop_assert_eq!(trace_bits(de.engine()), ref_trace.clone());
                prop_assert_eq!(de.engine().time_spent().to_bits(), ref_time.to_bits());
                // A rearm (explicit here; automatic at boundaries) makes
                // the degraded state durable again on healed storage...
                if de.poisoned() {
                    // ...except the storage is still the faulty wrapper;
                    // rearm may hit the (single-shot) script again only if
                    // the fault never fired, which it did. So this must
                    // succeed.
                    de.rearm().unwrap();
                }
                prop_assert!(!de.poisoned());
                drop(de);
                let (de2, outstanding) = DurableEngine::recover(
                    &dir, fresh_engine(&truth), "crash-prop-v1", dcfg,
                ).unwrap();
                let mut de2 = de2;
                for cc in outstanding {
                    de2.step(observe(&truth, cc.row, cc.col, cc.timeout)).unwrap();
                }
                for _ in 0..MAX_TICKS {
                    let actions = de2.step(Event::Tick).unwrap();
                    if actions.is_empty() {
                        break;
                    }
                    for a in actions {
                        if let Action::Probe { row, col, timeout } = a {
                            de2.step(observe(&truth, row, col, timeout)).unwrap();
                        }
                    }
                }
                prop_assert_eq!(trace_bits(de2.engine()), ref_trace.clone());
                prop_assert_eq!(de2.engine().time_spent().to_bits(), ref_time.to_bits());
            }
            Some(_) => {
                // Outcome A: stop at the clean error, recover on healed
                // storage, re-drive to exhaustion — bit-identical.
                drop(de);
                let (de2, outstanding) = DurableEngine::recover(
                    &dir, fresh_engine(&truth), "crash-prop-v1", dcfg,
                ).unwrap();
                let mut de2 = de2;
                for cc in outstanding {
                    de2.step(observe(&truth, cc.row, cc.col, cc.timeout)).unwrap();
                }
                for _ in 0..MAX_TICKS {
                    let actions = de2.step(Event::Tick).unwrap();
                    if actions.is_empty() {
                        break;
                    }
                    for a in actions {
                        if let Action::Probe { row, col, timeout } = a {
                            de2.step(observe(&truth, row, col, timeout)).unwrap();
                        }
                    }
                }
                prop_assert_eq!(trace_bits(de2.engine()), ref_trace.clone());
                prop_assert_eq!(de2.engine().time_spent().to_bits(), ref_time.to_bits());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
