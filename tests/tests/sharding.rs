//! Sharded-vs-unsharded bit-identity under adversarial interleavings.
//!
//! The sharding layer's contract is that the shard count is pure layout:
//! every observable — cells, caches, counters, revision clocks, the ALS
//! completion, and the policy's selection — is bit-identical at any
//! partitioning. The unit tests pin that for hand-written sequences; this
//! suite drives *arbitrary* interleavings of the four mutating operations
//! (observe-complete, observe-censored, add_rows, data-shift demotion)
//! through the [`ObservationStore`] at 1/2/8 shards, crossing shard
//! boundaries at random, and requires exact agreement — including the ALS
//! factor solve at 1/2/8 worker threads (the thread and shard knobs must
//! compose without moving a bit) and the LimeQO policy's probe selection.

use limeqo_core::complete::{AlsCompleter, Completer};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::policy::{LimeQoPolicy, Policy, PolicyCtx};
use limeqo_core::store::ObservationStore;
use limeqo_linalg::rng::SeededRng;
use proptest::prelude::*;

/// Apply a deterministic random operation sequence to `store`. The
/// sequence depends only on `seed`/`steps` (plus the row count, which
/// evolves identically at every shard count), so two stores driven with
/// the same arguments see the same interleaving regardless of layout.
fn drive(store: &mut ObservationStore, seed: u64, steps: usize) {
    let mut rng = SeededRng::new(seed);
    for _ in 0..steps {
        let n = store.matrix().n_rows();
        let k = store.matrix().n_cols();
        let row = rng.index(n);
        let col = rng.index(k);
        let v = rng.uniform(0.05, 8.0);
        match rng.index(20) {
            0 => store.add_rows(1 + rng.index(3)),
            1 => store.demote_to_priors(0.5),
            2..=6 => store.record_censored(row, col, v),
            _ => store.record_complete(row, col, v),
        }
    }
}

fn driven_store(n: usize, k: usize, shards: usize, seed: u64, steps: usize) -> ObservationStore {
    let mut store = ObservationStore::new(WorkloadMatrix::new_sharded(n, k, shards));
    drive(&mut store, seed, steps);
    store
}

/// Bitwise image of the ALS completion of `store` at `threads` workers.
fn als_bits(store: &ObservationStore, threads: usize, seed: u64) -> Vec<u64> {
    let mut als = AlsCompleter::paper_default(seed);
    als.iters = 4;
    als.threads = threads;
    als.complete(store.matrix()).as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// Store state after an arbitrary interleaving is layout-invariant:
    /// every cell, the best caches, the O(1) counters, the unobserved rank
    /// index, and both revision clocks agree exactly with the single-shard
    /// reference.
    #[test]
    fn interleaved_store_state_is_shard_invariant(
        seed in 0u64..1_000_000,
        n in 8usize..32,
        k in 4usize..10,
        steps in 40usize..160,
    ) {
        let reference = driven_store(n, k, 1, seed, steps);
        for shards in [2usize, 8] {
            let sharded = driven_store(n, k, shards, seed, steps);
            prop_assert_eq!(sharded.matrix().n_shards(), shards);
            prop_assert_eq!(sharded.matrix().n_rows(), reference.matrix().n_rows());
            prop_assert_eq!(sharded.epoch(), reference.epoch());
            prop_assert_eq!(sharded.completion_epoch(), reference.completion_epoch());
            prop_assert_eq!(
                sharded.matrix().complete_count(),
                reference.matrix().complete_count()
            );
            prop_assert_eq!(
                sharded.matrix().censored_count(),
                reference.matrix().censored_count()
            );
            prop_assert_eq!(sharded.prior_count(), reference.prior_count());
            for r in 0..reference.matrix().n_rows() {
                prop_assert_eq!(sharded.row_rev(r), reference.row_rev(r));
                prop_assert_eq!(sharded.matrix().row_best(r), reference.matrix().row_best(r));
                for c in 0..k {
                    prop_assert_eq!(sharded.matrix().cell(r, c), reference.matrix().cell(r, c));
                    prop_assert_eq!(sharded.is_prior(r, c), reference.is_prior(r, c));
                }
            }
            for rank in 0..reference.matrix().unobserved_count() {
                prop_assert_eq!(
                    sharded.matrix().unobserved_at_rank(rank),
                    reference.matrix().unobserved_at_rank(rank)
                );
            }
        }
    }

    /// The ALS factor solve over an interleaving-built store is
    /// bit-identical across the full shard-count × thread-count grid, and
    /// the LimeQO policy issues the same probes from every layout.
    #[test]
    fn als_and_selection_are_shard_and_thread_invariant(
        seed in 0u64..1_000_000,
        n in 8usize..28,
        k in 4usize..9,
        steps in 40usize..120,
    ) {
        let reference = driven_store(n, k, 1, seed, steps);
        let want_bits = als_bits(&reference, 1, seed);
        let want_picks = {
            let mut policy = LimeQoPolicy::with_als(seed);
            let ctx = PolicyCtx {
                wm: reference.matrix(),
                est_cost: None,
                store: Some(&reference),
            };
            policy.select(&ctx, 4, &mut SeededRng::new(seed ^ 0x5E1))
        };
        for shards in [1usize, 2, 8] {
            let sharded = driven_store(n, k, shards, seed, steps);
            for threads in [1usize, 2, 8] {
                prop_assert_eq!(
                    als_bits(&sharded, threads, seed),
                    want_bits.clone(),
                    "ALS diverged at {} shards x {} threads",
                    shards,
                    threads
                );
            }
            let mut policy = LimeQoPolicy::with_als(seed);
            let ctx =
                PolicyCtx { wm: sharded.matrix(), est_cost: None, store: Some(&sharded) };
            let picks = policy.select(&ctx, 4, &mut SeededRng::new(seed ^ 0x5E1));
            prop_assert_eq!(picks, want_picks.clone(), "selection diverged at {} shards", shards);
        }
    }
}
