//! The golden regression suite over the scenario registry.
//!
//! Every named scenario in `limeqo_sim::scenario::registry()` runs once
//! (at its registry-defined fast budget, seeds fanned out in parallel) and
//! is then checked two ways:
//!
//! 1. **Calibrated invariants** — properties that must hold for the
//!    algorithms to be correct at all: default ≥ final ≥ optimal ordering,
//!    monotone best-so-far between drift events, LimeQO no worse than
//!    Random at equal budget (drift-free scenarios; post-shift cold
//!    restarts are a known weakness, see ROADMAP), bounded ρ-regression
//!    for the online explorer, censoring-hostile regimes actually censor.
//! 2. **The golden summary** — every deterministic metric compared with
//!    tolerance against `tests/golden/scenarios.golden`. Regenerate after
//!    an intentional behavior change with:
//!
//!    ```text
//!    LIMEQO_BLESS=1 cargo test -p limeqo-integration-tests --test scenarios
//!    ```
//!
//!    and commit the diff — the diff *is* the review artifact.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

use limeqo_bench::scenario_runner::{
    run_scenario, run_scenarios, verify_scenario_sharded, ScenarioOutcome,
};
use limeqo_sim::scenario::{registry, scale_registry};

/// Run the whole registry exactly once, shared by every #[test] below.
fn outcomes() -> &'static [ScenarioOutcome] {
    static OUTCOMES: OnceLock<Vec<ScenarioOutcome>> = OnceLock::new();
    OUTCOMES.get_or_init(|| run_scenarios(&registry()))
}

/// The 100k-query scale tier, shared by the `#[ignore]`d tests (slow
/// tier, `./ci.sh --ignored`).
fn scale_outcomes() -> &'static [ScenarioOutcome] {
    static OUTCOMES: OnceLock<Vec<ScenarioOutcome>> = OnceLock::new();
    OUTCOMES.get_or_init(|| run_scenarios(&scale_registry()))
}

fn outcome(name: &str) -> &'static ScenarioOutcome {
    outcomes()
        .iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing from registry"))
}

fn scale_outcome(name: &str) -> &'static ScenarioOutcome {
    scale_outcomes()
        .iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("scenario {name} missing from scale registry"))
}

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(file)
}

/// Relative tolerance for golden comparison. Runs are deterministic on a
/// given platform; the slack only absorbs cross-platform float libm
/// differences.
const REL_TOL: f64 = 1e-6;

#[test]
fn registry_is_large_and_unique() {
    let specs = registry();
    assert!(specs.len() >= 8, "need >= 8 named scenarios, have {}", specs.len());
    let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), specs.len(), "duplicate scenario names");
}

#[test]
fn default_optimal_final_ordering() {
    for o in outcomes() {
        assert!(
            o.optimal_total <= o.default_total + 1e-9,
            "{}: optimal {} > default {}",
            o.name,
            o.optimal_total,
            o.default_total
        );
        let final_latency = o.online.as_ref().map(|on| on.final_latency).unwrap_or(o.final_latency);
        assert!(
            final_latency >= o.optimal_total - 1e-9,
            "{}: final {} beat the oracle optimum {}",
            o.name,
            final_latency,
            o.optimal_total
        );
        assert!(
            final_latency <= o.default_total + 1e-9,
            "{}: final {} regressed past the default {}",
            o.name,
            final_latency,
            o.default_total
        );
    }
}

#[test]
fn best_so_far_is_monotone_between_events() {
    for o in outcomes() {
        assert!(o.monotone_ok, "{}: latency regressed within a segment", o.name);
    }
}

#[test]
fn limeqo_no_worse_than_random_at_equal_budget() {
    // Scoped to drift-free scenarios at the tight 2 % tolerance; the
    // data-shift scenarios have their own invariants below (the single
    // 730-day shift must beat Random outright now that stale observations
    // are retained as censored priors; the compounding double shift gets
    // a looser bound — ROADMAP records the residual gap). The set is
    // derived from the registry so newly added drift-free LimeQO
    // scenarios are covered automatically.
    let mut covered = 0;
    for spec in registry() {
        if !(spec.policy.expects_to_beat_random() && spec.drift.is_empty()) {
            continue;
        }
        covered += 1;
        let o = outcome(&spec.name);
        let random = o.random_final_latency.expect("offline scenarios run a random reference");
        assert!(
            o.final_latency <= random * 1.02 + 1e-9,
            "{}: limeqo {} worse than random {}",
            spec.name,
            o.final_latency,
            random
        );
    }
    assert!(covered >= 6, "expected >= 6 drift-free LimeQO scenarios, found {covered}");
}

#[test]
fn tiny_headroom_degrades_gracefully() {
    let o = outcome("tiny-headroom");
    assert!(
        o.default_total / o.optimal_total < 1.25,
        "tiny-headroom grew headroom {:.2}x",
        o.default_total / o.optimal_total
    );
    // Nothing to win — but also nothing lost.
    assert!(o.final_latency <= o.default_total + 1e-9);
}

#[test]
fn censor_hostile_regime_censors_most_probes() {
    let o = outcome("censor-hostile");
    assert!(
        o.censored_cells >= 0.25 * o.cells_executed,
        "hostile regime should censor heavily: {} of {}",
        o.censored_cells,
        o.cells_executed
    );
}

#[test]
fn hint_shape_restricts_columns() {
    assert_eq!(outcome("hint-prefix-9").k, 9);
    assert_eq!(outcome("job-mini").k, 49);
}

#[test]
fn large_matrix_scales_and_improves() {
    let o = outcome("large-matrix-10k");
    assert_eq!(o.n, 10_000);
    assert!(
        o.final_latency < 0.8 * o.default_total,
        "10k matrix: limeqo should find real headroom, got {} of default {}",
        o.final_latency,
        o.default_total
    );
}

#[test]
fn online_regression_is_rho_bounded() {
    for name in ["online-uniform", "online-zipf"] {
        let o = outcome(name);
        let online = o.online.as_ref().expect("online outcome");
        assert!(online.rho_bound_ok, "{name}: an arrival exceeded the rho bound");
        // rho = 1.2: a cancelled gamble pays at most rho + 1 of the incumbent.
        assert!(
            online.max_regression_ratio <= 2.2 + 1e-9,
            "{name}: max per-arrival regression {}",
            online.max_regression_ratio
        );
        // Exploration pays for itself over the trace.
        assert!(
            online.total_latency <= online.default_latency,
            "{name}: online exploration cost more than always-default"
        );
        assert!(online.explored > 0.0 && online.wins > 0.0, "{name}: no exploration happened");
    }
}

#[test]
fn workload_shift_absorbs_new_queries() {
    let o = outcome("template-drift");
    // 16 of the 48 queries arrive mid-run; the final matrix sees them all.
    assert_eq!(o.n, 48);
    assert!(
        o.final_latency < 0.8 * o.default_total,
        "after absorbing arrivals, limeqo should still beat default clearly"
    );
}

#[test]
fn data_shift_reprices_and_recovers() {
    let o = outcome("data-shift");
    // The drifted regime is slower than the 60 s base calibration.
    assert!(o.default_total > o.initial_default_total);
    assert!(o.final_latency <= o.default_total + 1e-9);
}

#[test]
fn data_shift_retention_closes_the_random_gap() {
    // The calibrated failure this suite originally pinned: LimeQO's
    // cold restart after a data shift lost to Random (95.4 s vs 75.5 s at
    // 6x budget). With stale observations retained as censored priors and
    // the post-shift density gate, LimeQO must now be no worse than
    // Random at equal budget on the single-shift scenario.
    let o = outcome("data-shift");
    let random = o.random_final_latency.expect("offline scenario runs a random reference");
    assert!(
        o.final_latency <= random + 1e-9,
        "data-shift: limeqo {} still behind random {}",
        o.final_latency,
        random
    );
    // The compounding double-shift stress case is harder: each shift
    // demotes the recovery work of the previous segment, and LimeQO still
    // trails Random slightly there (an open ROADMAP item). Bound the gap
    // so it cannot quietly widen.
    let o2 = outcome("data-shift-retained");
    let random2 = o2.random_final_latency.expect("offline scenario runs a random reference");
    assert!(
        o2.final_latency <= random2 * 1.05 + 1e-9,
        "data-shift-retained: limeqo {} more than 5% behind random {}",
        o2.final_latency,
        random2
    );
}

#[test]
fn retention_beats_cold_restart_on_compounding_shifts() {
    // Pin the legacy behavior alongside the fix: the same double-shift
    // environment explored with the pre-retention policy (discard on
    // shift, no gate, cold ALS init) must do no better than the
    // drift-aware configuration the registry pins.
    use limeqo_core::scenario::PolicySpec;
    let mut legacy = limeqo_sim::scenario::by_name("data-shift-retained").expect("registered");
    legacy.policy = PolicySpec::limeqo_legacy();
    let legacy_out = limeqo_bench::scenario_runner::run_scenario(&legacy);
    let retained = outcome("data-shift-retained");
    assert!(
        retained.final_latency <= legacy_out.final_latency + 1e-9,
        "retention ({}) must not lose to the legacy cold restart ({})",
        retained.final_latency,
        legacy_out.final_latency
    );
}

#[test]
fn cold_row_bonus_improves_zipf_tail() {
    // online-zipf pinned 48.06 s final latency before the cold-row bonus
    // (optimal 38.7 s): cold rows arrived too rarely for a flat
    // explore_prob to ever probe them. With the bonus the scenario must
    // stay clearly below the old plateau, and the stronger-bonus variant
    // must do at least as well.
    let zipf = outcome("online-zipf").online.as_ref().expect("online outcome");
    assert!(
        zipf.final_latency < 45.0,
        "online-zipf final {} regressed toward the pre-bonus 48.06 s plateau",
        zipf.final_latency
    );
    let strong = outcome("zipf-cold-bonus").online.as_ref().expect("online outcome");
    assert!(
        strong.final_latency <= zipf.final_latency + 1e-9,
        "doubling the bonus should not lose coverage: strong {} vs base {}",
        strong.final_latency,
        zipf.final_latency
    );
    // The bonus must not break the bounded-regression economics: both
    // traces still pay for themselves vs always-default.
    assert!(strong.total_latency <= strong.default_latency);
}

/// Compare a metric map against a golden file, or re-bless it when
/// `LIMEQO_BLESS` is set. `registry_desc` names the source registry in the
/// blessed header.
fn check_golden(file: &str, registry_desc: &str, got: &BTreeMap<String, f64>) {
    let path = golden_path(file);

    if std::env::var("LIMEQO_BLESS").is_ok() {
        let mut body = format!(
            "# Golden scenario summary — deterministic metrics for every scenario in\n\
             # {registry_desc}, pinned by tests/tests/scenarios.rs.\n\
             # Regenerate intentionally with:\n\
             #   LIMEQO_BLESS=1 cargo test -p limeqo-integration-tests --test scenarios\n"
        );
        if file != "scenarios.golden" {
            body.push_str("#   (this tier runs #[ignore]d: add -- --ignored)\n");
        }
        for (k, v) in got {
            body.push_str(&format!("{k} {v}\n"));
        }
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, body).expect("write golden");
        eprintln!("blessed {} metrics into {}", got.len(), path.display());
        return;
    }

    let body = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run LIMEQO_BLESS=1 cargo test --test scenarios",
            path.display()
        )
    });
    let mut want: BTreeMap<String, f64> = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line.split_once(' ').unwrap_or_else(|| panic!("bad golden line: {line}"));
        want.insert(k.to_string(), v.parse().unwrap_or_else(|_| panic!("bad value: {line}")));
    }

    let mut failures = Vec::new();
    for (k, w) in &want {
        match got.get(k) {
            None => failures.push(format!("missing metric {k} (golden has {w})")),
            Some(g) => {
                let tol = REL_TOL * w.abs().max(1.0);
                if (g - w).abs() > tol {
                    failures.push(format!("{k}: got {g}, golden {w}"));
                }
            }
        }
    }
    for k in got.keys() {
        if !want.contains_key(k) {
            failures.push(format!("new metric {k} not in golden file"));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatch in {file} ({} issues) — if intentional, re-bless and commit:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn sharded_engine_is_bit_identical_on_every_fast_scenario() {
    // The sharding layer's headline contract: the shard count is a pure
    // scale-out knob. For every fast-registry scenario, a sharded run must
    // reproduce the single-shard run bit for bit — exploration traces,
    // charged clocks, executed/censored cell counts, and final workload
    // latency all compared exactly (online scenarios additionally compare
    // the arrival-level economics). One verification thread per
    // (scenario, shard count); each builds its environment once and runs
    // both engines per seed.
    let specs = registry();
    std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .flat_map(|spec| {
                [2usize, 8].map(|shards| {
                    (
                        spec.name.clone(),
                        shards,
                        scope.spawn(move || verify_scenario_sharded(spec, shards)),
                    )
                })
            })
            .collect();
        let mut failures = Vec::new();
        for (name, shards, handle) in handles {
            if let Err(e) = handle.join().expect("verification thread panicked") {
                failures.push(format!("{name} at {shards} shards: {e}"));
            }
        }
        assert!(
            failures.is_empty(),
            "sharded runs diverged from the unsharded engine:\n{}",
            failures.join("\n")
        );
    });
}

#[test]
fn golden_summary_matches() {
    let mut got: BTreeMap<String, f64> = BTreeMap::new();
    for o in outcomes() {
        got.extend(o.metrics());
    }
    check_golden("scenarios.golden", "limeqo_sim::scenario::registry()", &got);
}

// ---- The 100k-query scale tier (slow; `./ci.sh --ignored`) ----

#[test]
#[ignore = "scale tier: 100k-query scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_100k_limeqo_beats_random_at_equal_budget() {
    let o = scale_outcome("scale-100k");
    assert_eq!(o.n, 100_000);
    assert_eq!(o.k, 49);
    assert!(o.monotone_ok, "scale-100k latency regressed within a segment");
    assert!(o.optimal_total <= o.final_latency + 1e-9);
    assert!(o.final_latency <= o.default_total + 1e-9);
    let random = o.random_final_latency.expect("offline scenario runs a random reference");
    assert!(
        o.final_latency <= random + 1e-9,
        "scale-100k: limeqo {} worse than random {} at equal budget",
        o.final_latency,
        random
    );
}

#[test]
#[ignore = "scale tier: 100k-query scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_100k_zipf_online_improves_and_bounds_regression() {
    let o = scale_outcome("scale-100k-zipf");
    let online = o.online.as_ref().expect("online outcome");
    assert!(online.rho_bound_ok, "an arrival exceeded the rho bound at scale");
    assert!(
        online.total_latency <= online.default_latency,
        "online exploration at scale cost more than always-default"
    );
    assert!(online.final_latency <= o.default_total + 1e-9);
}

#[test]
#[ignore = "scale tier: 100k-query scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_goldens_match() {
    let mut got: BTreeMap<String, f64> = BTreeMap::new();
    for o in scale_outcomes() {
        got.extend(o.metrics());
    }
    check_golden("scale.golden", "limeqo_sim::scenario::scale_registry()", &got);
}

/// The `scale-1m` memory budget (PERF.md's budget table): the sparse
/// workload-matrix indices — per-row headers, observed (col, value) pairs,
/// censored bitmaps, best caches and Fenwick trees — must fit in 256 MiB
/// at 1M × 17 with the defaults column plus the ~90k budgeted probes
/// observed. The old dense 16-byte-per-cell store alone was ~272 MB.
const SCALE_1M_MEM_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

#[test]
#[ignore = "scale tier: the 1M-row scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_1m_limeqo_beats_random_within_the_memory_budget() {
    for name in ["scale-1m", "scale-1m-tenants"] {
        let o = scale_outcome(name);
        assert_eq!(o.n, 1_000_000);
        assert_eq!(o.k, 17);
        assert!(o.monotone_ok, "{name}: latency regressed within a segment");
        assert!(o.optimal_total <= o.final_latency + 1e-9);
        assert!(o.final_latency <= o.default_total + 1e-9);
        let random = o.random_final_latency.expect("offline scenario runs a random reference");
        assert!(
            o.final_latency <= random + 1e-9,
            "{name}: limeqo {} worse than random {} at equal budget",
            o.final_latency,
            random
        );
        assert!(o.mem_bytes > 0, "{name}: runner must report the matrix footprint");
        assert!(
            o.mem_bytes <= SCALE_1M_MEM_BUDGET_BYTES,
            "{name}: sparse matrix cost {} bytes, budget is {}",
            o.mem_bytes,
            SCALE_1M_MEM_BUDGET_BYTES
        );
    }
}

#[test]
#[ignore = "scale tier: the 1M-row scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_1m_tenant_count_never_moves_the_outcome() {
    // scale-1m (8 shards) and scale-1m-tenants (64 shards) are the same
    // spec apart from the partitioning, so every deterministic metric must
    // agree EXACTLY between them — the bit-identity contract demonstrated
    // at the full 1M-row scale without a third run.
    let a = scale_outcome("scale-1m");
    let b = scale_outcome("scale-1m-tenants");
    let strip = |o: &ScenarioOutcome| -> Vec<(String, u64)> {
        o.metrics()
            .into_iter()
            .map(|(k, v)| {
                (k.split_once('.').expect("namespaced metric").1.to_string(), v.to_bits())
            })
            .collect()
    };
    assert_eq!(strip(a), strip(b), "8-shard and 64-tenant metrics diverged at 1M rows");
}

#[test]
#[ignore = "scale tier: the 1M-row scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_1m_metrics_stable_across_two_runs() {
    // Determinism at the 1M tier: a second, fresh run (its own environment
    // build and per-shard ALS fan-out) must reproduce every metric and the
    // reported matrix footprint EXACTLY.
    let first = scale_outcome("scale-1m");
    let spec = limeqo_sim::scenario::by_name("scale-1m").expect("registered");
    let second = run_scenario(&spec);
    let a: Vec<(String, u64)> =
        first.metrics().into_iter().map(|(k, v)| (k, v.to_bits())).collect();
    let b: Vec<(String, u64)> =
        second.metrics().into_iter().map(|(k, v)| (k, v.to_bits())).collect();
    assert_eq!(a, b, "scale-1m metrics differ between two runs");
    assert_eq!(first.mem_bytes, second.mem_bytes, "scale-1m footprint differs between two runs");
}

#[test]
#[ignore = "scale tier: 100k-query scenarios take minutes; run via ./ci.sh --ignored"]
fn scale_100k_goldens_stable_across_two_runs() {
    // Determinism at scale: a second, fresh run of the scenario (its own
    // environment build, seed fan-out and parallel ALS) must reproduce
    // every metric EXACTLY — not just within tolerance.
    let first = scale_outcome("scale-100k");
    let spec = limeqo_sim::scenario::by_name("scale-100k").expect("registered");
    let second = run_scenario(&spec);
    let a: Vec<(String, u64)> =
        first.metrics().into_iter().map(|(k, v)| (k, v.to_bits())).collect();
    let b: Vec<(String, u64)> =
        second.metrics().into_iter().map(|(k, v)| (k, v.to_bits())).collect();
    assert_eq!(a, b, "scale-100k metrics differ between two runs");
}
