//! Integration tests for the neural (TCNN) path: featurization from the
//! simulator's plans through training to exploration.

use limeqo_core::explore::{ExploreConfig, Explorer};
use limeqo_core::policy::{BaoCachePolicy, LimeQoPolicy};
use limeqo_integration_tests::tiny_workload;
use limeqo_tcnn::{PlainTcnnCompleter, TcnnConfig, TransductiveTcnnCompleter, WorkloadFeatures};

#[test]
fn limeqo_plus_explores_and_improves() {
    let (w, m, oracle) = tiny_workload(20, 401);
    let features = WorkloadFeatures::build(&w);
    let tcnn = TransductiveTcnnCompleter::with_features(features, 3, TcnnConfig::test_scale(), 1);
    let policy = LimeQoPolicy::new(Box::new(tcnn), "limeqo+");
    let cfg = ExploreConfig { batch: 8, seed: 2, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(policy), cfg, w.n());
    ex.run_until(2.0 * m.default_total);
    assert!(
        ex.workload_latency() < m.default_total,
        "LimeQO+ failed to improve: {} vs {}",
        ex.workload_latency(),
        m.default_total
    );
    assert!(ex.overhead() > 0.0, "TCNN overhead must be metered");
}

#[test]
fn bao_cache_explores_round_robin_with_tcnn() {
    let (w, m, oracle) = tiny_workload(15, 402);
    let features = WorkloadFeatures::build(&w);
    let tcnn = PlainTcnnCompleter::with_features(features, TcnnConfig::test_scale(), 3);
    let policy = BaoCachePolicy::new(Box::new(tcnn));
    let cfg = ExploreConfig { batch: 8, seed: 4, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(policy), cfg, w.n());
    ex.run_until(1.0 * m.default_total);
    assert!(ex.cells_executed() >= 8);
    assert!(ex.workload_latency() <= m.default_total);
}

#[test]
fn neural_overhead_exceeds_linear_overhead() {
    // The paper's central overhead claim (Figs. 7/13): the TCNN costs
    // orders of magnitude more per step than ALS.
    let (w, m, oracle) = tiny_workload(20, 403);
    let budget = 0.5 * m.default_total;
    let cfg = ExploreConfig { batch: 8, seed: 5, ..Default::default() };

    let mut linear =
        Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(6)), cfg.clone(), w.n());
    linear.run_until(budget);

    let features = WorkloadFeatures::build(&w);
    let tcnn = TransductiveTcnnCompleter::with_features(features, 3, TcnnConfig::test_scale(), 7);
    let mut neural =
        Explorer::new(&oracle, Box::new(LimeQoPolicy::new(Box::new(tcnn), "limeqo+")), cfg, w.n());
    neural.run_until(budget);

    // At test scale the true gap is ~5–10x; assert 2x so scheduler noise
    // under a fully loaded test run cannot flip the comparison (both
    // overheads are wall-clock and this binary shares the machine with
    // the scenario suite's fan-out).
    assert!(
        neural.overhead() > linear.overhead() * 2.0,
        "neural {} vs linear {}",
        neural.overhead(),
        linear.overhead()
    );
}

#[test]
fn featurization_covers_all_cells_and_is_reused() {
    let (w, _m, _oracle) = tiny_workload(10, 404);
    let features = WorkloadFeatures::build(&w);
    assert_eq!(features.trees.len(), w.n() * w.k());
    // Two completers can share the same Arc.
    let c1 = PlainTcnnCompleter::with_features(features.clone(), TcnnConfig::test_scale(), 8);
    let c2 = TransductiveTcnnCompleter::with_features(features, 2, TcnnConfig::test_scale(), 9);
    drop((c1, c2));
}
