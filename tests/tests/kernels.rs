//! Kernel-equivalence differential suite: the cache-blocked kernels in
//! `limeqo_linalg::block` and the incremental factor-update path in
//! `AlsCompleter` against their reference implementations.
//!
//! Two contracts are pinned here (PERF.md §Kernels):
//!
//! 1. **Bit-identity** — the tiled kernels replicate the naive kernels'
//!    per-element floating-point operation sequence exactly, so any tile
//!    size at any thread count produces byte-identical output. This is
//!    what lets `AlsKernel::Blocked` be the default without moving a
//!    single golden.
//! 2. **Bounded deviation** — the incremental path (re-solve only dirty
//!    `Q` rows against retained `H`) is *exactly* the full path when every
//!    row is dirty, and stays within the documented relative-Frobenius
//!    bound for arbitrary dirty subsets on in-model workloads.
//!
//! The `#[ignore]`d tests sweep production-sized shapes and the full
//! registry (slow tier, `./ci.sh --ignored`).

use limeqo_bench::scenario_runner::run_scenario;
use limeqo_core::complete::{AlsCompleter, AlsKernel, Completer};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::scenario::PolicySpec;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::{
    frobenius_norm, matmul_t_tiled, par, ridge_solve_cols, ridge_solve_cols_tiled,
    ridge_solve_rows_blocked, ridge_solve_rows_tiled, Mat,
};
use limeqo_sim::scenario::registry;
use proptest::prelude::*;

/// The tile sizes every differential test sweeps: degenerate (1), prime
/// (7, never divides the tested shapes evenly), large (64, usually wider
/// than the whole RHS panel), and auto (0).
const TILES: [usize; 4] = [1, 7, 64, 0];
const THREADS: [usize; 3] = [1, 2, 8];

/// Bit-exact view of a matrix: `f64::to_bits` per element, so NaN slots
/// and signed zeros compare exactly instead of by IEEE equality.
fn bits(m: &Mat) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Synthetic exactly-rank-`r` workload matrix observing roughly `frac` of
/// its cells plus the full default column; mirrors the core crate's
/// private test_support builder.
fn synthetic_wm(n: usize, k: usize, r: usize, frac: f64, seed: u64) -> WorkloadMatrix {
    let mut rng = SeededRng::new(seed);
    let q = rng.uniform_mat(n, r, 0.1, 2.0);
    let h = rng.uniform_mat(k, r, 0.1, 2.0);
    let truth = q.matmul_t(&h).expect("shape");
    let mut wm = WorkloadMatrix::new(n, k);
    for i in 0..n {
        wm.set_complete(i, 0, truth[(i, 0)]);
        for j in 1..k {
            if rng.chance(frac) {
                wm.set_complete(i, j, truth[(i, j)]);
            }
        }
    }
    wm
}

/// An `AlsCompleter` warm-fitted once on `wm`, ready for incremental
/// calls: low iteration count keeps the proptest sweeps fast.
fn fitted_incremental(wm: &WorkloadMatrix, rank: usize, seed: u64) -> AlsCompleter {
    let mut als = AlsCompleter::warm_started(rank, seed);
    als.iters = 10;
    als.incremental = true;
    als.incremental_threshold = 1.0;
    als.incremental_full_every = 0;
    let _ = als.complete(wm);
    als
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// `matmul_t_tiled` replicates the serial `Mat::matmul_t` FP sequence
    /// at every tile size and thread count, including shapes no tile
    /// divides evenly.
    #[test]
    fn tiled_matmul_is_bit_identical_to_naive(
        dims in (1usize..40, 1usize..20, 1usize..8),
        seed in 0u64..500,
    ) {
        let (n, k, r) = dims;
        let mut rng = SeededRng::new(seed ^ 0xB10C);
        let a = rng.gaussian_mat(n, r, 0.0, 2.0);
        let b = rng.gaussian_mat(k, r, 0.0, 2.0);
        let naive = a.matmul_t(&b).unwrap();
        for tile in TILES {
            for threads in THREADS {
                let tiled = matmul_t_tiled(&a, &b, threads, tile).unwrap();
                prop_assert_eq!(
                    bits(&tiled), bits(&naive),
                    "matmul_t diverged at tile {} threads {}", tile, threads
                );
            }
        }
        // The parallel naive kernel shares the same contract.
        prop_assert_eq!(bits(&par::matmul_t(&a, &b, 4).unwrap()), bits(&naive));
    }

    /// `ridge_solve_rows_tiled` matches `ridge_solve_rows_blocked` on the
    /// same block partition, bit for bit — including partitions with empty
    /// and uneven blocks.
    #[test]
    fn tiled_row_solve_is_bit_identical_to_blocked(
        dims in (2usize..24, 1usize..6, 1usize..30),
        lambda in 0.0f64..2.0,
        seed in 0u64..500,
    ) {
        let (m, p, q) = dims;
        let mut rng = SeededRng::new(seed ^ 0x50_1E);
        let g = rng.uniform_mat(m, p, 0.0, 1.5);
        let b_rows = rng.uniform_mat(q, m, 0.0, 2.0);
        let split = q / 2;
        for blocks in [vec![(0, q)], vec![(0, split), (split, split), (split, q)]] {
            let naive = ridge_solve_rows_blocked(&g, &b_rows, lambda, 1, &blocks).unwrap();
            for tile in TILES {
                for threads in THREADS {
                    let tiled =
                        ridge_solve_rows_tiled(&g, &b_rows, lambda, threads, &blocks, tile)
                            .unwrap();
                    prop_assert_eq!(
                        bits(&tiled), bits(&naive),
                        "row solve diverged at tile {} threads {}", tile, threads
                    );
                }
            }
        }
    }

    /// `ridge_solve_cols_tiled` matches `ridge_solve_cols` bit for bit:
    /// the in-place row-window reads replicate the strided `col_block`
    /// gather's FP sequence exactly, zero-skip semantics included.
    #[test]
    fn tiled_col_solve_is_bit_identical_to_naive(
        dims in (2usize..24, 1usize..6, 1usize..16),
        lambda in 0.0f64..2.0,
        seed in 0u64..500,
    ) {
        let (m, p, cols) = dims;
        let mut rng = SeededRng::new(seed ^ 0xC0_15);
        let mut g = rng.uniform_mat(m, p, 0.0, 1.5);
        // Plant exact zeros so the skip predicate is exercised.
        if m > 2 {
            for j in 0..p {
                g[(2, j)] = 0.0;
            }
        }
        let b = rng.uniform_mat(m, cols, 0.0, 2.0);
        let naive = ridge_solve_cols(&g, &b, lambda, 1).unwrap();
        for tile in TILES {
            for threads in THREADS {
                let tiled = ridge_solve_cols_tiled(&g, &b, lambda, threads, tile).unwrap();
                prop_assert_eq!(
                    bits(&tiled), bits(&naive),
                    "col solve diverged at tile {} threads {}", tile, threads
                );
            }
        }
    }

    /// End to end through Algorithm 2: an `AlsCompleter` on the blocked
    /// kernels reproduces the naive-kernel completer byte for byte at any
    /// tile size and thread count, censored clamps and all.
    #[test]
    fn als_blocked_kernel_is_bit_identical_to_naive(
        dims in (4usize..30, 3usize..12),
        frac in 0.2f64..0.8,
        seed in 0u64..500,
    ) {
        let (n, k) = dims;
        let mut wm = synthetic_wm(n, k, 3, frac, seed);
        let first_unobserved = wm.unobserved_cells().next();
        if let Some((ci, cj)) = first_unobserved {
            wm.set_censored(ci, cj, 42.0);
        }
        let reference = {
            let mut als = AlsCompleter::with_rank(3, seed);
            als.iters = 5;
            als.kernel = AlsKernel::Naive;
            als.complete(&wm)
        };
        for tile in TILES {
            for threads in THREADS {
                let mut als = AlsCompleter::with_rank(3, seed);
                als.iters = 5;
                als.threads = threads;
                als.kernel = AlsKernel::Blocked { tile };
                prop_assert_eq!(
                    bits(&als.complete(&wm)), bits(&reference),
                    "ALS diverged at tile {} threads {}", tile, threads
                );
            }
        }
    }

    /// When every row is dirty the incremental path must be *exactly* the
    /// full alternation — same factors, same completion, bit for bit.
    #[test]
    fn incremental_with_all_rows_dirty_is_exactly_the_full_path(
        dims in (4usize..24, 3usize..10),
        frac in 0.2f64..0.7,
        seed in 0u64..500,
    ) {
        let (n, k) = dims;
        let wm = synthetic_wm(n, k, 3, frac, seed);
        let mut incremental = fitted_incremental(&wm, 3, seed);
        // The documented threshold contract: an all-dirty call exceeds the
        // default 0.5 dirty fraction and falls through to the exact full
        // alternation — not an approximation of it.
        incremental.incremental_threshold = 0.5;
        let mut full = fitted_incremental(&wm, 3, seed);
        let all: Vec<usize> = (0..n).collect();
        let got = incremental.complete_dirty(&wm, Some(&all));
        let want = full.complete(&wm);
        prop_assert_eq!(bits(&got), bits(&want));
    }

    /// Arbitrary dirty subsets: the incremental completion stays within
    /// the documented relative-Frobenius bound of the full refit when the
    /// new observations come from the same low-rank ground truth
    /// (the convergence contract in PERF.md §Kernels).
    #[test]
    fn incremental_deviation_from_full_stays_bounded(
        dims in (8usize..24, 4usize..10),
        frac in 0.3f64..0.7,
        subset_seed in 0u64..1_000,
        seed in 0u64..500,
    ) {
        let (n, k) = dims;
        let mut rng = SeededRng::new(seed);
        let qt = rng.uniform_mat(n, 3, 0.1, 2.0);
        let ht = rng.uniform_mat(k, 3, 0.1, 2.0);
        let truth = qt.matmul_t(&ht).unwrap();
        let mut wm = WorkloadMatrix::new(n, k);
        for i in 0..n {
            wm.set_complete(i, 0, truth[(i, 0)]);
            for j in 1..k {
                if rng.chance(frac) {
                    wm.set_complete(i, j, truth[(i, j)]);
                }
            }
        }
        let mut incremental = fitted_incremental(&wm, 3, seed);
        let mut full = fitted_incremental(&wm, 3, seed);
        // Reveal one more truth cell in an arbitrary subset of rows.
        let mut sub_rng = SeededRng::new(subset_seed ^ 0xD127);
        let mut dirty = Vec::new();
        for i in 0..n {
            if !sub_rng.chance(0.3) {
                continue;
            }
            let next_unobserved = wm.unobserved_cells().find(|&(r, _)| r == i).map(|(_, j)| j);
            if let Some(j) = next_unobserved {
                wm.set_complete(i, j, truth[(i, j)]);
                dirty.push(i);
            }
        }
        let got = incremental.complete_dirty(&wm, Some(&dirty));
        let want = full.complete(&wm);
        let mut diff = got.clone();
        diff.axpy(-1.0, &want).unwrap();
        let rel = frobenius_norm(&diff) / frobenius_norm(&want).max(1e-12);
        prop_assert!(rel < 0.25, "incremental deviated {rel} from the full refit");
    }
}

/// Fast-tier registry sweep: LimeQO stays no worse than Random (at the
/// golden suite's 2 % tolerance) on every drift-free LimeQoAls scenario
/// with incremental factor updates switched on. The big 10k-row scenario
/// joins in the `#[ignore]`d full sweep below.
#[test]
fn registry_holds_limeqo_vs_random_with_incremental_updates() {
    sweep_registry_with_incremental(1_000);
}

#[test]
#[ignore = "slow tier: the full registry incl. large-matrix-10k; run via ./ci.sh --ignored"]
fn full_registry_holds_limeqo_vs_random_with_incremental_updates() {
    sweep_registry_with_incremental(usize::MAX);
}

fn sweep_registry_with_incremental(max_rows: usize) {
    let mut covered = 0;
    for mut spec in registry() {
        if spec.workload.n_queries() > max_rows {
            continue;
        }
        let PolicySpec::LimeQoAls { ref mut incremental_als, .. } = spec.policy else {
            continue;
        };
        if !spec.drift.is_empty() {
            continue;
        }
        *incremental_als = true;
        let o = run_scenario(&spec);
        let random = o.random_final_latency.expect("offline scenarios run a random reference");
        assert!(
            o.final_latency <= random * 1.02 + 1e-9,
            "{}: limeqo with incremental updates {} worse than random {}",
            spec.name,
            o.final_latency,
            random
        );
        covered += 1;
    }
    assert!(covered >= 3, "expected >= 3 drift-free LimeQoAls scenarios, found {covered}");
}

/// Production-sized shapes for the bit-identity contract: panels far
/// larger than any cache level, deliberately non-divisible by every tile.
#[test]
#[ignore = "slow tier: large-shape kernel sweep; run via ./ci.sh --ignored"]
fn large_shape_kernels_stay_bit_identical() {
    let mut rng = SeededRng::new(0xB16_5EED);
    let a = rng.gaussian_mat(2_003, 7, 0.0, 2.0);
    let b = rng.gaussian_mat(53, 7, 0.0, 2.0);
    let naive = a.matmul_t(&b).unwrap();
    for tile in [1, 83, 256, 0] {
        for threads in [1, 3, 8] {
            let tiled = matmul_t_tiled(&a, &b, threads, tile).unwrap();
            assert_eq!(bits(&tiled), bits(&naive), "matmul tile {tile} threads {threads}");
        }
    }
    let g = rng.uniform_mat(53, 7, 0.0, 1.5);
    let b_rows = rng.uniform_mat(2_003, 53, 0.0, 2.0);
    let blocks = [(0usize, 997usize), (997, 2_003)];
    let naive = ridge_solve_rows_blocked(&g, &b_rows, 0.2, 1, &blocks).unwrap();
    for tile in [1, 83, 256, 0] {
        for threads in [1, 3, 8] {
            let tiled = ridge_solve_rows_tiled(&g, &b_rows, 0.2, threads, &blocks, tile).unwrap();
            assert_eq!(bits(&tiled), bits(&naive), "row solve tile {tile} threads {threads}");
        }
    }
    let g2 = rng.uniform_mat(2_003, 7, 0.0, 1.5);
    let b2 = rng.uniform_mat(2_003, 53, 0.0, 2.0);
    let naive = ridge_solve_cols(&g2, &b2, 0.2, 1).unwrap();
    for tile in [1, 83, 256, 0] {
        for threads in [1, 3, 8] {
            let tiled = ridge_solve_cols_tiled(&g2, &b2, 0.2, threads, tile).unwrap();
            assert_eq!(bits(&tiled), bits(&naive), "col solve tile {tile} threads {threads}");
        }
    }
}
