//! The property-based scenario fuzzer, wired into the test tiers.
//!
//! * Tier 1 keeps a tiny deterministic smoke (a prefix of the CI seed
//!   stream) plus the "broken fixtures are caught" direction: every spec
//!   under `scenarios/broken/` is a *valid, loadable* scenario that the
//!   fuzzer's calibrated invariants must reject — each one is a
//!   fuzzer-found counterexample pinned so the failure mode it documents
//!   cannot quietly disappear (if a later PR fixes the underlying
//!   behavior, the fixture moves out of `broken/`, which is exactly the
//!   review conversation we want).
//! * The `--ignored` tier runs the acceptance-sized sweep (64 generated
//!   specs, all green) and re-minimizes the fixtures end to end.

use std::path::PathBuf;

use limeqo_bench::fuzz::{check_spec, minimize, run_fuzz};
use limeqo_sim::load_scenario;

fn broken_fixtures() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../scenarios/broken");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("scenarios/broken/ exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("json") | Some("toml")))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "scenarios/broken/ must hold at least one pinned counterexample");
    files
}

#[test]
fn fuzz_smoke_prefix_is_green() {
    // Seeds 1..=4 — a prefix of the `ci.sh` smoke (seed 1, N=8), so a
    // generator or invariant regression is visible in plain `cargo test`.
    let report = run_fuzz(1, 4, None);
    assert!(
        report.failures.is_empty(),
        "fuzz smoke failed: {:?}",
        report.failures.iter().map(|f| &f.reason).collect::<Vec<_>>()
    );
}

#[test]
fn broken_fixtures_load_but_fail_the_invariants() {
    for path in broken_fixtures() {
        let spec = load_scenario(&path)
            .unwrap_or_else(|e| panic!("broken fixtures must stay loadable: {e}"));
        let err = check_spec(&spec).expect_err(&format!(
            "{} no longer violates any invariant — the behavior it pins was fixed; \
             move it out of scenarios/broken/ and into the regular corpus or a test",
            path.display()
        ));
        assert!(
            err.contains(&spec.name),
            "failure reason should name the offending scenario: {err}"
        );
    }
}

#[test]
#[ignore = "acceptance sweep: 64 end-to-end scenario runs (~30s release)"]
fn sixty_four_generated_specs_hold_every_invariant() {
    let report = run_fuzz(1, 64, None);
    assert_eq!(report.cases, 64);
    assert!(
        report.failures.is_empty(),
        "calibrated invariants failed on generated specs: {:?}",
        report.failures.iter().map(|f| (f.case_seed, &f.reason)).collect::<Vec<_>>()
    );
}

#[test]
#[ignore = "re-minimizes each broken fixture end to end"]
fn broken_fixtures_minimize_to_valid_failing_specs() {
    for path in broken_fixtures() {
        let spec = load_scenario(&path).expect("fixture loads");
        let (minimized, reason) = minimize(&spec);
        minimized.check().unwrap_or_else(|e| {
            panic!("{}: shrinker produced an invalid spec: {e}", path.display())
        });
        assert!(!reason.is_empty());
        // The shrinker never grows a spec: the minimized workload is no
        // larger than the fixture's.
        assert!(
            minimized.workload.n_queries() <= spec.workload.n_queries(),
            "{}: minimized n grew",
            path.display()
        );
    }
}
