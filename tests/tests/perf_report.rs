//! The perf emitter's contract (see PERF.md): a smoke-sized run must
//! produce a document that parses, carries every required metric key, and
//! round-trips through the minimal JSON parser — the same validation the
//! `perf` binary applies to `bench-results/BENCH_policy.json` before CI
//! trusts the trajectory.

use limeqo_bench::perf::{run, validate, PerfOpts, REQUIRED_KEYS};
use limeqo_bench::report::Json;

#[test]
fn smoke_perf_report_has_required_keys_and_roundtrips() {
    let doc = run(&PerfOpts { smoke: true, threads: 1 });
    validate(&doc).expect("freshly built report must validate");
    let parsed = Json::parse(&doc.render()).expect("rendered report must parse");
    assert_eq!(parsed, doc, "render/parse round trip must be lossless");
    validate(&parsed).expect("parsed report must validate");
    for &key in REQUIRED_KEYS {
        assert!(parsed.get(key).is_some(), "{key} missing after round trip");
    }
    // Sanity on the headline numbers: positive durations, a finite
    // speedup, and the machine identity that contextualizes them.
    assert!(parsed.get("als.serial_s").and_then(Json::as_num).unwrap() > 0.0);
    assert!(parsed.get("als.speedup").and_then(Json::as_num).unwrap() > 0.0);
    assert!(parsed.get("cores").and_then(Json::as_num).unwrap() >= 1.0);
    assert_eq!(parsed.get("smoke"), Some(&Json::Bool(true)));
}
