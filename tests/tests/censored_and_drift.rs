//! Integration tests for the censored technique and the drift model.

use limeqo_core::complete::{AlsCompleter, Completer};
use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::matrix::{Cell, WorkloadMatrix};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_integration_tests::tiny_workload;
use limeqo_sim::drift::{build_oracle_uncalibrated, drift_workload, optimal_hint_change_fraction};

#[test]
fn censored_cells_appear_and_carry_bounds() {
    let (w, m, oracle) = tiny_workload(25, 301);
    let cfg = ExploreConfig { batch: 8, seed: 1, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(2)), cfg, w.n());
    ex.run_until(2.0 * m.default_total);
    assert!(ex.wm().censored_count() > 0, "no censored observations at all");
    // Every censored bound must be a true lower bound.
    for i in 0..w.n() {
        for j in 0..w.k() {
            if let Cell::Censored(bound) = ex.wm().cell(i, j) {
                assert!(
                    m.true_latency[(i, j)] > bound - 1e-9,
                    "bound {bound} not below truth {}",
                    m.true_latency[(i, j)]
                );
            }
        }
    }
}

#[test]
fn censored_als_respects_bounds_on_simulated_matrices() {
    let (w, m, _oracle) = tiny_workload(20, 302);
    // Observe defaults, censor a handful of cells at their row defaults.
    let defaults: Vec<f64> = (0..w.n()).map(|i| m.true_latency[(i, 0)]).collect();
    let mut wm = WorkloadMatrix::with_defaults(&defaults, w.k());
    for (i, &d) in defaults.iter().enumerate().take(5) {
        wm.set_censored(i, 3, d);
    }
    let mut als = AlsCompleter::paper_default(3);
    let pred = als.complete(&wm);
    for i in 0..5 {
        assert!(pred[(i, 3)] >= defaults[i] - 1e-9);
    }
}

#[test]
fn uncensored_als_ignores_bounds() {
    let (w, m, _oracle) = tiny_workload(20, 303);
    let defaults: Vec<f64> = (0..w.n()).map(|i| m.true_latency[(i, 0)]).collect();
    let mut wm = WorkloadMatrix::with_defaults(&defaults, w.k());
    // Huge bounds that predictions cannot reach without the clamp.
    wm.set_censored(0, 3, 1e9);
    let mut censored = AlsCompleter::paper_default(4);
    let mut raw = AlsCompleter::without_censoring(4);
    assert!(censored.complete(&wm)[(0, 3)] >= 1e9);
    assert!(raw.complete(&wm)[(0, 3)] < 1e9);
}

#[test]
fn drift_grows_tables_and_changes_hints_monotonically() {
    let (w, base, _oracle) = tiny_workload(40, 304);
    let mut last_frac = 0.0;
    for days in [30.0, 365.0, 730.0] {
        let drifted = drift_workload(&w, days, 1);
        let o = build_oracle_uncalibrated(&drifted);
        let frac = optimal_hint_change_fraction(&base, &o);
        assert!(
            frac >= last_frac - 0.08,
            "hint churn should roughly grow with horizon: {frac} after {days}d vs {last_frac}"
        );
        last_frac = frac;
        assert!(o.default_total > 0.0);
    }
    assert!(last_frac > 0.0, "two years must change some optimal hints");
}

#[test]
fn data_shift_recovery_end_to_end() {
    let (w, m, oracle) = tiny_workload(30, 305);
    let future = drift_workload(&w, 730.0, 2);
    let fm = build_oracle_uncalibrated(&future);
    let future_oracle = MatOracle::new(fm.true_latency.clone(), Some(fm.est_cost.clone()));

    let cfg = ExploreConfig { batch: 8, seed: 3, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(5)), cfg, w.n());
    ex.run_until(2.0 * m.default_total);
    ex.data_shift(&future_oracle);
    let after_shift = ex.workload_latency();
    // Cached hints keep the workload at or below the new default total.
    assert!(
        after_shift <= fm.default_total * 1.0 + 1e-9,
        "stale cache {after_shift} worse than new default {}",
        fm.default_total
    );
    // Further exploration keeps improving on the new data.
    let t = ex.time_spent();
    ex.run_until(t + 2.0 * fm.default_total);
    assert!(ex.workload_latency() <= after_shift + 1e-9);
}
