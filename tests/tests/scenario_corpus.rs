//! The checked-in `scenarios/` corpus re-expresses the code registry as
//! files. This suite pins the two halves together:
//!
//! 1. **Spec equivalence** — every corpus file parses to a spec that is
//!    `==` its code-registry twin, and every registry scenario has a
//!    file. Since `run_scenario` is deterministic in the spec, spec
//!    equality makes the corpus metrics bit-identical to the golden
//!    suite's by construction; a direct bitwise metric comparison on the
//!    cheap scenarios (and, under `--ignored`, the whole fast registry)
//!    guards the construction itself.
//! 2. **Serializer stability** — re-serializing each loaded file
//!    reproduces its bytes, so `scenario export` is canonical and a
//!    hand-edited file that drifts from canonical form shows up in
//!    review as a rewrite, not a silent reformat.
//! 3. **The extras** — `scenarios/extra/` holds hand-written specs for
//!    the arrival knobs the registry does not exercise (bursts, bounded
//!    concurrency, open-loop rates, CSV trace replay); they must parse,
//!    validate, and name the knobs they claim to cover.
//!
//! The deliberately-broken fixtures under `scenarios/broken/` are valid,
//! loadable specs that *violate the fuzzer's calibrated invariants*; they
//! are exercised by `scenario_fuzz.rs`, not here.

use std::collections::BTreeMap;
use std::path::PathBuf;

use limeqo_bench::run_scenario;
use limeqo_sim::scenario::{registry, scale_registry, ArrivalModel, ScenarioSpec};
use limeqo_sim::{load_corpus, load_scenario, to_json_string, to_toml_string};

/// Workspace-root path (the tests crate lives one level down).
fn root(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join(rel)
}

fn corpus() -> Vec<(PathBuf, ScenarioSpec)> {
    load_corpus(&root("scenarios")).expect("scenarios/ corpus loads")
}

#[test]
fn corpus_reexpresses_the_fast_registry_exactly() {
    let by_name: BTreeMap<String, ScenarioSpec> =
        corpus().into_iter().map(|(_, s)| (s.name.clone(), s)).collect();
    let reg = registry();
    assert_eq!(
        by_name.keys().cloned().collect::<Vec<_>>(),
        {
            let mut names: Vec<String> = reg.iter().map(|s| s.name.clone()).collect();
            names.sort();
            names
        },
        "corpus files and registry scenarios must be the same set"
    );
    for spec in reg {
        assert_eq!(
            by_name[&spec.name], spec,
            "scenarios/{}.* differs from its code-registry twin",
            spec.name
        );
    }
}

#[test]
fn scale_corpus_reexpresses_the_scale_registry_exactly() {
    let by_name: BTreeMap<String, ScenarioSpec> = load_corpus(&root("scenarios/scale"))
        .expect("scenarios/scale/ corpus loads")
        .into_iter()
        .map(|(_, s)| (s.name.clone(), s))
        .collect();
    let reg = scale_registry();
    assert_eq!(by_name.len(), reg.len());
    for spec in reg {
        assert_eq!(by_name[&spec.name], spec, "scale corpus twin diverged for {}", spec.name);
    }
}

#[test]
fn corpus_files_are_in_canonical_form() {
    for (path, spec) in corpus() {
        let bytes = std::fs::read_to_string(&path).expect("corpus file readable");
        let canonical = match path.extension().and_then(|e| e.to_str()) {
            Some("toml") => to_toml_string(&spec),
            _ => to_json_string(&spec),
        };
        assert_eq!(
            bytes,
            canonical,
            "{} is not in canonical serializer form (regenerate with `scenario export`)",
            path.display()
        );
    }
}

/// The direct half of the bit-identity claim: run two cheap scenarios
/// from their files and from their code twins and require *exactly*
/// equal metrics (no tolerance — same spec, same deterministic runner).
#[test]
fn cheap_corpus_files_produce_bit_identical_metrics() {
    for name in ["tiny-headroom", "hint-prefix-9"] {
        assert_bit_identical(name);
    }
}

/// The full fast registry under `--ignored` (seconds per scenario).
#[test]
#[ignore = "runs the whole fast corpus twice; seconds per scenario"]
fn every_corpus_file_produces_bit_identical_metrics() {
    for spec in registry() {
        assert_bit_identical(&spec.name);
    }
}

fn assert_bit_identical(name: &str) {
    let from_code = limeqo_sim::scenario::by_name(name).expect("registered scenario");
    let (_, from_file) = corpus()
        .into_iter()
        .find(|(_, s)| s.name == name)
        .unwrap_or_else(|| panic!("no corpus file for {name}"));
    let (code_out, file_out) = (run_scenario(&from_code), run_scenario(&from_file));
    let (code_metrics, file_metrics) = (code_out.metrics(), file_out.metrics());
    assert_eq!(code_metrics.len(), file_metrics.len());
    for ((k, code), (k2, file)) in code_metrics.iter().zip(file_metrics.iter()) {
        assert_eq!(k, k2);
        assert!(
            code.to_bits() == file.to_bits(),
            "{k}: corpus-file run {file} != code-registry run {code} (bitwise)"
        );
    }
}

#[test]
fn extra_specs_cover_the_new_arrival_knobs() {
    let burst =
        load_scenario(&root("scenarios/extra/online-burst-queue.json")).expect("burst spec loads");
    let a = burst.arrivals.as_ref().expect("online spec has arrivals");
    assert_eq!((a.burst, a.concurrency), (4, 2), "burst spec must exercise batching + workers");
    assert!(a.rate > 0.0, "burst spec must be open-loop (rate > 0)");

    let replay = load_scenario(&root("scenarios/extra/online-replay-trace.toml"))
        .expect("replay spec loads (TOML + replay_csv relative to the spec file)");
    let a = replay.arrivals.as_ref().expect("online spec has arrivals");
    let ArrivalModel::Replay { rows } = &a.model else {
        panic!("replay spec must resolve replay_csv into an inline trace")
    };
    let n = replay.workload.n_queries();
    assert!(!rows.is_empty() && rows.iter().all(|&r| r < n), "trace rows in range");
}

/// The extras run green end to end (they carry no beats-random claim,
/// but every structural invariant must hold).
#[test]
#[ignore = "runs two online scenarios end to end"]
fn extra_specs_hold_every_calibrated_invariant() {
    for file in ["extra/online-burst-queue.json", "extra/online-replay-trace.toml"] {
        let spec = load_scenario(&root("scenarios").join(file)).expect("extra spec loads");
        limeqo_bench::fuzz::check_spec(&spec)
            .unwrap_or_else(|e| panic!("scenarios/{file} violated an invariant: {e}"));
    }
}
