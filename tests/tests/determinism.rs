//! Seed determinism: a full LimeQO exploration round must be a pure
//! function of its seed. Two runs with the same seed produce
//! byte-identical exploration traces (same cells, same order, same
//! charged seconds, same censoring decisions) for both the ALS and the
//! TCNN completers; different seeds diverge.
//!
//! The trace (`Explorer::trace`) is compared via its `Debug` rendering:
//! Rust formats floats with shortest-round-trip precision, so equal bytes
//! iff equal values. Wall-clock overhead is deliberately *not* part of the
//! trace — it is the one nondeterministic quantity the harness meters.

use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle};
use limeqo_core::policy::LimeQoPolicy;
use limeqo_core::Policy;
use limeqo_sim::workloads::{Workload, WorkloadSpec};
use limeqo_tcnn::{TcnnConfig, TransductiveTcnnCompleter};

fn trace_bytes(
    workload: &Workload,
    oracle: &MatOracle,
    policy: Box<dyn Policy + '_>,
    seed: u64,
    budget: f64,
) -> Vec<u8> {
    let cfg = ExploreConfig { batch: 8, seed, ..Default::default() };
    let mut ex = Explorer::new(oracle, policy, cfg, workload.n());
    ex.run_until(budget);
    assert!(ex.cells_executed() > 0, "run must actually explore");
    format!("{:?}", ex.trace()).into_bytes()
}

fn build(n: usize, seed: u64) -> (Workload, MatOracle, f64) {
    let mut w = WorkloadSpec::tiny(n, seed).build();
    let m = w.build_oracle();
    let budget = 1.5 * m.default_total;
    (w, MatOracle::new(m.true_latency.clone(), Some(m.est_cost.clone())), budget)
}

#[test]
fn als_trace_is_seed_deterministic() {
    let (w, oracle, budget) = build(24, 0xDE7);
    let run =
        |seed: u64| trace_bytes(&w, &oracle, Box::new(LimeQoPolicy::with_als(seed)), seed, budget);
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run(8);
    assert_ne!(a, c, "different seeds must diverge");
}

#[test]
fn warm_started_als_trace_is_seed_deterministic() {
    // The drift-aware configuration carries ALS factors across rounds;
    // the cross-round state must still be a pure function of the seed.
    use limeqo_core::complete::AlsCompleter;
    let (w, oracle, budget) = build(24, 0xEA3);
    let run = |seed: u64| {
        let mut policy = LimeQoPolicy::new(Box::new(AlsCompleter::warm_started(5, seed)), "limeqo");
        policy.density_gate = 0.12;
        policy.cold_row_bonus = 0.25;
        trace_bytes(&w, &oracle, Box::new(policy), seed, budget)
    };
    let a = run(17);
    let b = run(17);
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run(18);
    assert_ne!(a, c, "different seeds must diverge");
    // Warm starting must actually change exploration relative to cold
    // restarts — otherwise this test pins nothing.
    let cold = trace_bytes(&w, &oracle, Box::new(LimeQoPolicy::with_als(17)), 17, budget);
    assert_ne!(a, cold, "warm-started trace should differ from the cold-init trace");
}

#[test]
fn retention_data_shift_is_seed_deterministic() {
    // A drift-aware run (priors + density gate) across a data shift must
    // replay byte-identically too: demotion is pure bookkeeping.
    use limeqo_core::store::DriftPolicy;
    use limeqo_sim::drift::{build_oracle_uncalibrated, drift_workload};
    let mut w = WorkloadSpec::tiny(20, 0xFA11).build();
    let m = w.build_oracle();
    let oracle_a = MatOracle::new(m.true_latency.clone(), Some(m.est_cost.clone()));
    let drifted = drift_workload(&w, 730.0, 1);
    let dm = build_oracle_uncalibrated(&drifted);
    let oracle_b = MatOracle::new(dm.true_latency.clone(), Some(dm.est_cost.clone()));
    let budget = 4.0 * m.default_total;
    let run = |seed: u64| {
        let cfg = ExploreConfig {
            batch: 8,
            seed,
            retention: DriftPolicy::default(),
            ..Default::default()
        };
        let mut policy = LimeQoPolicy::with_als(seed);
        policy.density_gate = 0.12;
        let mut ex = Explorer::new(&oracle_a, Box::new(policy), cfg, w.n());
        ex.run_until(0.4 * budget);
        ex.data_shift(&oracle_b);
        ex.run_until(budget);
        assert!(ex.store().epoch() == 1);
        format!("{:?}", ex.trace()).into_bytes()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn parallel_als_is_byte_identical_across_thread_counts_10k() {
    // The parallel completion engine's core guarantee, at the 10k×49
    // shape the perf trajectory quotes: ALS output at 1, 2 and 8 worker
    // threads is byte-identical (iterations shortened — every code path
    // runs each iteration, the count only scales runtime).
    use limeqo_core::complete::{AlsCompleter, Completer};
    use limeqo_core::matrix::WorkloadMatrix;
    use limeqo_linalg::rng::SeededRng;
    let (n, k) = (10_000, 49);
    let mut rng = SeededRng::new(0x10C0);
    let mut wm = WorkloadMatrix::new(n, k);
    for row in 0..n {
        wm.set_complete(row, 0, rng.uniform(1.0, 10.0));
        for col in 1..k {
            if rng.chance(0.05) {
                wm.set_complete(row, col, rng.uniform(0.1, 5.0));
            } else if rng.chance(0.02) {
                wm.set_censored(row, col, rng.uniform(0.1, 2.0));
            }
        }
    }
    let complete_bits = |threads: usize| -> Vec<u64> {
        let mut als = AlsCompleter::paper_default(11);
        als.iters = 6;
        als.threads = threads;
        als.complete(&wm).as_slice().iter().map(|v| v.to_bits()).collect()
    };
    let serial = complete_bits(1);
    for threads in [2usize, 8] {
        assert_eq!(
            complete_bits(threads),
            serial,
            "ALS at {threads} threads diverged from the serial path"
        );
    }
}

#[test]
fn parallel_policy_trace_is_thread_count_invariant() {
    // End-to-end: a whole LimeQO exploration run (policy + harness) must
    // produce the same trace whatever the ALS thread count — the thread
    // knob is invisible to everything above the solver.
    use limeqo_core::complete::AlsCompleter;
    let (w, oracle, budget) = build(24, 0xF00D);
    let run = |threads: usize| {
        let mut als = AlsCompleter::paper_default(9);
        als.threads = threads;
        trace_bytes(&w, &oracle, Box::new(LimeQoPolicy::new(Box::new(als), "limeqo")), 9, budget)
    };
    let serial = run(1);
    assert_eq!(run(2), serial);
    assert_eq!(run(8), serial);
}

#[test]
fn tcnn_trace_is_seed_deterministic() {
    let (w, oracle, budget) = build(14, 0x7C2);
    // threads: 1 pins the gradient-shard reduction order, making the trace
    // identical across machines, not just across runs on one machine.
    let cfg = TcnnConfig { threads: 1, ..TcnnConfig::test_scale() };
    let run = |seed: u64| {
        let completer = TransductiveTcnnCompleter::new(&w, 5, cfg.clone(), seed);
        trace_bytes(
            &w,
            &oracle,
            Box::new(LimeQoPolicy::new(Box::new(completer), "limeqo+")),
            seed,
            budget,
        )
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run(4);
    assert_ne!(a, c, "different seeds must diverge");
}

#[test]
fn workload_oracle_rebuild_is_bitwise_stable() {
    // The environment side of determinism: the same spec builds the same
    // oracle bit for bit, including the parallel build path.
    let build = || {
        let mut w = WorkloadSpec::tiny(20, 0xB17).build();
        w.build_oracle()
    };
    let a = build();
    let b = build();
    let bits =
        |m: &limeqo_linalg::Mat| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
    assert_eq!(bits(&a.true_latency), bits(&b.true_latency));
    assert_eq!(bits(&a.est_cost), bits(&b.est_cost));
}
