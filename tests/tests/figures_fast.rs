//! Smoke-run every figure module end to end, so a figure bin can't
//! silently rot: each `run(&FigOpts::smoke())` exercises workload
//! construction, the technique fan-out, and CSV emission at a tiny forced
//! scale with the test-scale TCNN.
//!
//! Figures whose smoke run still exceeds ~5 s (full-scale oracle builds or
//! per-step TCNN training) are `#[ignore]`d; the `./ci.sh --ignored` tier
//! runs them.

use limeqo_bench::figures::{
    fig05, fig06_07, fig08, fig09, fig10, fig11, fig12_13, fig14, fig15, fig16, fig17, fig18,
    table1, FigOpts,
};
use limeqo_bench::harness::WorkloadKind;

fn smoke() -> FigOpts {
    FigOpts::smoke()
}

#[test]
fn workload_query_counts_match_paper() {
    // The cheap half of table1's guard, kept in the default tier now that
    // the full oracle build is #[ignore]d: specs must generate exactly the
    // paper's query counts.
    for kind in [WorkloadKind::Job, WorkloadKind::Ceb, WorkloadKind::Stack, WorkloadKind::Dsb] {
        let (q_paper, _, _) = kind.paper_stats();
        assert_eq!(kind.spec().n_queries, q_paper, "{} query count drifted", kind.name());
        assert_eq!(kind.spec().build().n(), q_paper, "{} generator drifted", kind.name());
    }
}

#[test]
#[ignore = "slow: builds all four full-scale workload oracles (~20 s)"]
fn table1_reproduces_query_counts() {
    // Panics internally if the query counts diverge from the paper.
    table1::run(&smoke());
}

#[test]
#[ignore = "slow: six techniques x four workloads incl. TCNN training"]
fn fig05_latency_after_budget_multiples() {
    fig05::run(&smoke());
}

#[test]
fn fig06_07_curves_and_overhead() {
    fig06_07::run(&smoke());
}

#[test]
fn fig08_greedy_trap() {
    fig08::run(&smoke());
}

#[test]
fn fig09_workload_shift() {
    fig09::run(&smoke());
}

#[test]
fn fig10_incremental_drift() {
    fig10::run(&smoke());
}

#[test]
fn fig11_data_shift() {
    fig11::run(&smoke());
}

#[test]
fn fig12_13_tcnn_vs_limeqo_plus() {
    fig12_13::run(&smoke());
}

#[test]
fn fig14_low_rank_spectrum() {
    fig14::run(&smoke());
}

#[test]
fn fig15_rank_sweep() {
    fig15::run(&smoke());
}

#[test]
fn fig16_censored_ablation() {
    fig16::run(&smoke());
}

#[test]
fn fig17_completion_comparison() {
    fig17::run(&smoke());
}

#[test]
fn fig18_bayesqo_comparison() {
    fig18::run(&smoke());
}
