//! Smoke-run the cheap figure harnesses end to end (the expensive
//! exploration figures are exercised by `cargo run -p limeqo-bench --bin all`).

use limeqo_bench::figures::{fig14, fig17, fig18, table1, FigOpts};

fn fast_opts() -> FigOpts {
    FigOpts { fast: true, seeds_linear: 1, seeds_neural: 1, ..Default::default() }
}

#[test]
fn table1_reproduces_query_counts() {
    // Panics internally if the query counts diverge from the paper.
    table1::run(&fast_opts());
}

#[test]
fn fig14_low_rank_spectrum() {
    fig14::run(&fast_opts());
}

#[test]
fn fig17_completion_comparison() {
    fig17::run(&fast_opts());
}

#[test]
fn fig18_bayesqo_comparison() {
    fig18::run(&fast_opts());
}
