//! Edge cases and failure-injection across the stack.

use limeqo_core::complete::{AlsCompleter, Completer};
use limeqo_core::explore::{ExploreConfig, Explorer, MatOracle, Oracle};
use limeqo_core::matrix::WorkloadMatrix;
use limeqo_core::online::{OnlineConfig, OnlineExplorer};
use limeqo_core::policy::{CellChoice, LimeQoPolicy, Policy, PolicyCtx, RandomPolicy, ScoreMode};
use limeqo_integration_tests::tiny_workload;
use limeqo_linalg::rng::SeededRng;
use limeqo_linalg::Mat;

#[test]
fn single_query_workload() {
    // One row: exploration still works and terminates at the row optimum.
    let mut rng = SeededRng::new(1);
    let lat = rng.uniform_mat(1, 49, 0.5, 5.0);
    let oracle = MatOracle::new(lat.clone(), None);
    let cfg = ExploreConfig { batch: 4, seed: 1, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(2)), cfg, 1);
    ex.run_until(1e9);
    let optimal = lat.row_min(0).unwrap().1;
    assert!((ex.workload_latency() - optimal).abs() < 1e-9);
}

#[test]
fn max_steps_safety_valve() {
    let (w, _m, oracle) = tiny_workload(10, 501);
    let cfg = ExploreConfig { batch: 1, seed: 2, max_steps: 3, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(RandomPolicy), cfg, w.n());
    ex.run_until(1e12);
    assert!(ex.cells_executed() <= 3, "max_steps must bound work");
}

#[test]
fn zero_budget_explores_nothing() {
    let (w, m, oracle) = tiny_workload(10, 502);
    let cfg = ExploreConfig { batch: 8, seed: 3, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(RandomPolicy), cfg, w.n());
    ex.run_until(0.0);
    assert_eq!(ex.cells_executed(), 0);
    assert!((ex.workload_latency() - m.default_total).abs() < 1e-9);
}

#[test]
fn als_on_fully_observed_matrix_returns_observations() {
    let mut rng = SeededRng::new(4);
    let truth = rng.uniform_mat(8, 6, 0.1, 3.0);
    let mut wm = WorkloadMatrix::new(8, 6);
    for i in 0..8 {
        for j in 0..6 {
            wm.set_complete(i, j, truth[(i, j)]);
        }
    }
    let mut als = AlsCompleter::paper_default(5);
    let pred = als.complete(&wm);
    assert_eq!(pred.as_slice(), truth.as_slice());
}

#[test]
fn als_handles_all_identical_latencies() {
    // Degenerate rank-0-plus-constant matrix must not panic or produce NaN.
    let mut wm = WorkloadMatrix::new(10, 8);
    for i in 0..10 {
        wm.set_complete(i, 0, 2.0);
    }
    let mut als = AlsCompleter::paper_default(6);
    let pred = als.complete(&wm);
    assert!(pred.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0));
}

#[test]
fn absolute_score_mode_behaves_like_greedy_on_long_queries() {
    // With Absolute scoring, the longest row dominates selection even when
    // its relative improvement is modest (the behaviour Eq. 6 avoids).
    struct HalfCompleter;
    impl Completer for HalfCompleter {
        fn name(&self) -> &'static str {
            "half"
        }
        fn complete(&mut self, wm: &WorkloadMatrix) -> Mat {
            // Predict half the row best for the first unobserved column.
            let mut m = Mat::zeros(wm.n_rows(), wm.n_cols());
            for i in 0..wm.n_rows() {
                let best = wm.row_best(i).map(|(_, v)| v).unwrap_or(1.0);
                for j in 0..wm.n_cols() {
                    m[(i, j)] = match wm.cell(i, j) {
                        limeqo_core::matrix::Cell::Complete(v) => v,
                        _ if j == 1 => best * 0.5,
                        _ => best,
                    };
                }
            }
            m
        }
    }
    // Row 0: 100 s default (absolute gain 50). Row 1: 1 s default with the
    // same *relative* gain (absolute 0.5).
    let wm = WorkloadMatrix::with_defaults(&[100.0, 1.0], 3);
    let mut rng = SeededRng::new(7);
    let ctx = PolicyCtx { wm: &wm, est_cost: None, store: None };

    let mut abs = LimeQoPolicy::new(Box::new(HalfCompleter), "abs");
    abs.score_mode = ScoreMode::Absolute;
    let first_abs: Vec<CellChoice> = abs.select(&ctx, 1, &mut rng);
    assert_eq!(first_abs[0].row, 0, "absolute scoring chases the long query");

    let mut ratio = LimeQoPolicy::new(Box::new(HalfCompleter), "ratio");
    ratio.score_mode = ScoreMode::Ratio;
    let first_ratio: Vec<CellChoice> = ratio.select(&ctx, 2, &mut rng);
    // Ratio scoring sees identical ratios (1.0) — both rows are candidates.
    let rows: Vec<usize> = first_ratio.iter().map(|c| c.row).collect();
    assert!(rows.contains(&0) && rows.contains(&1));
}

#[test]
fn online_explorer_with_zero_rho_never_completes_gambles() {
    // rho = 1.0 means a gamble must strictly beat the incumbent to finish;
    // everything else is cancelled at the bound. No regression beyond 2x.
    let (w, _m, oracle) = tiny_workload(15, 503);
    let cfg = OnlineConfig { explore_prob: 1.0, rho: 1.0, seed: 8, ..Default::default() };
    let mut ex = OnlineExplorer::new(&oracle, Box::new(AlsCompleter::paper_default(9)), cfg);
    for arrival in 0..300 {
        let row = arrival % w.n();
        let incumbent = ex.wm().row_best(row).unwrap().1;
        let got = ex.serve(row);
        assert!(got <= 2.0 * incumbent + 1e-9);
    }
}

#[test]
fn oracle_trait_object_usable_via_dyn() {
    let (_w, m, oracle) = tiny_workload(5, 504);
    let dyn_oracle: &dyn Oracle = &oracle;
    assert_eq!(dyn_oracle.shape(), (5, 49));
    assert_eq!(dyn_oracle.true_latency(0, 0), m.true_latency[(0, 0)]);
    assert!(dyn_oracle.est_cost().is_some());
}

#[test]
fn explorer_rejects_invalid_initial_rows() {
    let (_w, _m, oracle) = tiny_workload(5, 505);
    let cfg = ExploreConfig::default();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Explorer::new(&oracle, Box::new(RandomPolicy), cfg, 99)
    }));
    assert!(result.is_err(), "out-of-range initial rows must be rejected");
}

#[test]
fn workload_scaling_preserves_hint_count_and_determinism() {
    use limeqo_sim::workloads::WorkloadSpec;
    for scale in [0.05, 0.5] {
        let a = WorkloadSpec::dsb().scaled(scale).build();
        let b = WorkloadSpec::dsb().scaled(scale).build();
        assert_eq!(a.k(), 49);
        assert_eq!(a.n(), b.n());
        for (qa, qb) in a.queries.iter().zip(b.queries.iter()) {
            assert_eq!(qa.noise_seed, qb.noise_seed);
        }
    }
}
