//! End-to-end integration: simulated DBMS → workload matrix → exploration
//! policies → verified plan cache.

use limeqo_core::explore::{ExploreConfig, Explorer};
use limeqo_core::policy::{GreedyPolicy, LimeQoPolicy, QoAdvisorPolicy, RandomPolicy};
use limeqo_integration_tests::tiny_workload;

#[test]
fn limeqo_reaches_oracle_optimal_with_unlimited_budget() {
    let (w, m, oracle) = tiny_workload(30, 201);
    let cfg = ExploreConfig { batch: 8, seed: 1, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(1)), cfg, w.n());
    ex.run_until(1e12);
    // With row-best timeouts and Algorithm 1's re-exploration rule, full
    // exploration must land on the oracle optimum.
    let p = ex.workload_latency();
    assert!(
        (p - m.optimal_total).abs() / m.optimal_total < 1e-6,
        "P {} vs optimal {}",
        p,
        m.optimal_total
    );
}

#[test]
fn every_policy_improves_over_default_given_time() {
    let (w, m, oracle) = tiny_workload(30, 202);
    let budget = 3.0 * m.default_total;
    let policies: Vec<(&str, Box<dyn limeqo_core::policy::Policy>)> = vec![
        ("random", Box::new(RandomPolicy)),
        ("greedy", Box::new(GreedyPolicy)),
        ("qo-advisor", Box::new(QoAdvisorPolicy)),
        ("limeqo", Box::new(LimeQoPolicy::with_als(2))),
    ];
    for (name, policy) in policies {
        let cfg = ExploreConfig { batch: 8, seed: 3, ..Default::default() };
        let mut ex = Explorer::new(&oracle, policy, cfg, w.n());
        ex.run_until(budget);
        let p = ex.workload_latency();
        assert!(
            p < m.default_total * 0.999,
            "{name} failed to improve: {p} vs default {}",
            m.default_total
        );
        assert!(p >= m.optimal_total - 1e-9, "{name} went below optimal?!");
    }
}

#[test]
fn limeqo_beats_random_at_default_budget() {
    // Averaged over seeds to avoid flaky single-run comparisons. Matrix
    // completion needs enough rows to learn cross-query structure — with
    // ~50 rows the rank-5 model is underdetermined and LimeQO degrades
    // toward Greedy (verified empirically); at 120+ rows it wins
    // consistently, mirroring the paper's 113–6191-query workloads.
    let (w, m, oracle) = tiny_workload(120, 203);
    let budget = 1.0 * m.default_total;
    let mut random_sum = 0.0;
    let mut limeqo_sum = 0.0;
    for seed in 0..3 {
        let cfg = ExploreConfig { batch: 8, seed, ..Default::default() };
        let mut ex = Explorer::new(&oracle, Box::new(RandomPolicy), cfg.clone(), w.n());
        ex.run_until(budget);
        random_sum += ex.workload_latency();
        let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(seed)), cfg, w.n());
        ex.run_until(budget);
        limeqo_sum += ex.workload_latency();
    }
    assert!(limeqo_sum < random_sum, "LimeQO {} vs Random {}", limeqo_sum / 3.0, random_sum / 3.0);
}

#[test]
fn exploration_time_accounting_matches_eq3() {
    // Total time spent must equal the sum over executed cells of
    // min(true latency, timeout) — verified indirectly: re-running with the
    // same seed reproduces the same trajectory exactly.
    let (w, _m, oracle) = tiny_workload(20, 204);
    let run = |seed: u64| {
        let cfg = ExploreConfig { batch: 4, seed, ..Default::default() };
        let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(9)), cfg, w.n());
        ex.run_until(30.0);
        (ex.time_spent(), ex.cells_executed(), ex.workload_latency())
    };
    assert_eq!(run(5), run(5));
}

#[test]
fn workload_shift_preserves_no_regression() {
    let (w, _m, oracle) = tiny_workload(30, 205);
    let initial = 20;
    let cfg = ExploreConfig { batch: 8, seed: 6, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(LimeQoPolicy::with_als(7)), cfg, initial);
    ex.run_until(20.0);
    ex.add_queries(w.n() - initial);
    // After the shift, new rows serve their defaults; latency on the
    // expanded workload must never regress from here on.
    let mut last = ex.workload_latency();
    for _ in 0..20 {
        if !ex.step() {
            break;
        }
        let now = ex.workload_latency();
        assert!(now <= last + 1e-9, "regression after shift: {now} > {last}");
        last = now;
    }
}

#[test]
fn qo_advisor_uses_est_cost_from_simulator() {
    let (w, _m, oracle) = tiny_workload(15, 206);
    let cfg = ExploreConfig { batch: 4, seed: 8, ..Default::default() };
    let mut ex = Explorer::new(&oracle, Box::new(QoAdvisorPolicy), cfg, w.n());
    assert!(ex.step(), "QO-Advisor should select cells");
    assert!(ex.cells_executed() > 0);
}
